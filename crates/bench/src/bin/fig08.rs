//! Regenerates the paper's Fig. 8 overhead budget. See DESIGN.md.

use ebm_bench::{figures, run_and_save};

fn main() {
    run_and_save(&figures::fig08());
}
