//! Trace-schema validator: checks JSONL trace lines against the contract
//! in `docs/TRACE_SCHEMA.md`.
//!
//! The emitter (`gpu_sim::trace`) writes every record with a stable field
//! order and a `v` schema version; this module is the consuming side of
//! that contract.  It is deliberately **strict**: field names must match
//! exactly, appear in the documented order, and no unknown fields are
//! tolerated — so a schema drift in the emitter fails `trace-tools
//! validate` (and the CI gate built on it) instead of silently producing
//! wrong analyses.  Per-version rules: `cache_stats` needs v ≥ 2,
//! `metrics_window` / `profile_span` need v ≥ 3, the engine skip
//! fractions on `metrics_window` appear from v ≥ 4 (older records with
//! the shorter field list still validate), and the substrate telemetry
//! kinds (`sched_unit`, `domain_window`, `cache_tier`) plus
//! `cache_stats.inflight_joined` appear from v ≥ 5.

use crate::json::{parse, Json};
use gpu_types::Histogram;

/// Newest schema version this validator understands (kept in lock-step
/// with `gpu_sim::trace::TRACE_SCHEMA_VERSION` by a test).
pub const MAX_SCHEMA_VERSION: u64 = 5;

/// What a field's value must look like.
#[derive(Debug, Clone, Copy)]
enum Ty {
    /// Non-negative integer.
    U64,
    /// Finite number or `null` (non-finite floats serialize as `null`).
    NumOrNull,
    /// String.
    Str,
    /// Non-negative integer or `null` (`metrics_window.app`).
    U64OrNull,
    /// Array of (number or `null`) — `partition_window.per_app_bw`.
    NumArr,
    /// `core_window.stall`: `{mem, struct, idle}` fractions.
    StallFracObj,
    /// `metrics_window.stalls`: `{mem, exec, barrier, tlp_capped}` counts.
    StallCountObj,
    /// A serialized histogram, checked for internal consistency.
    Hist,
}

/// One field of an event record: name, value shape, and the schema
/// version that introduced it (a record only carries the fields its
/// claimed version knows, still in serialization order).
type FieldSpec = (&'static str, Ty, u64);

/// Kind tag, minimum schema version, and the fields after
/// `v`/`kind`/`cycle` in exact serialization order.
type KindSpec = (&'static str, u64, &'static [FieldSpec]);

const KINDS: &[KindSpec] = &[
    (
        "window_sample",
        1,
        &[
            ("app", Ty::U64, 1),
            ("eb", Ty::NumOrNull, 1),
            ("bw", Ty::NumOrNull, 1),
            ("cmr", Ty::NumOrNull, 1),
            ("l1mr", Ty::NumOrNull, 1),
            ("l2mr", Ty::NumOrNull, 1),
            ("ipc", Ty::NumOrNull, 1),
        ],
    ),
    (
        "tlp_decision",
        1,
        &[
            ("app", Ty::U64, 1),
            ("old", Ty::U64, 1),
            ("new", Ty::U64, 1),
            ("reason", Ty::Str, 1),
        ],
    ),
    (
        "search_phase",
        1,
        &[("scheme", Ty::Str, 1), ("phase", Ty::Str, 1)],
    ),
    (
        "partition_window",
        1,
        &[
            ("partition", Ty::U64, 1),
            ("per_app_bw", Ty::NumArr, 1),
            ("rowbuf_hit_rate", Ty::NumOrNull, 1),
            ("queue_depth", Ty::U64, 1),
        ],
    ),
    (
        "core_window",
        1,
        &[
            ("core", Ty::U64, 1),
            ("app", Ty::U64, 1),
            ("ipc", Ty::NumOrNull, 1),
            ("active_warps", Ty::NumOrNull, 1),
            ("stall", Ty::StallFracObj, 1),
        ],
    ),
    (
        "cache_stats",
        2,
        &[
            ("hits", Ty::U64, 2),
            ("disk_hits", Ty::U64, 2),
            ("misses", Ty::U64, 2),
            ("bypasses", Ty::U64, 2),
            ("stores", Ty::U64, 2),
            ("verified", Ty::U64, 2),
            ("inflight_joined", Ty::U64, 5),
        ],
    ),
    (
        "metrics_window",
        3,
        &[
            ("app", Ty::U64OrNull, 3),
            ("stalls", Ty::StallCountObj, 3),
            ("dram_lat", Ty::Hist, 3),
            ("mshr_occ", Ty::Hist, 3),
            ("queue_depth", Ty::Hist, 3),
            ("machine_fast_forward_fraction", Ty::NumOrNull, 4),
            ("component_idle_skip_fraction", Ty::NumOrNull, 4),
        ],
    ),
    (
        "profile_span",
        3,
        &[
            ("level", Ty::Str, 3),
            ("name", Ty::Str, 3),
            ("depth", Ty::U64, 3),
            ("wall_s", Ty::NumOrNull, 3),
            ("cycles", Ty::U64, 3),
            ("cache_hits", Ty::U64, 3),
            ("cache_misses", Ty::U64, 3),
            ("workers", Ty::U64, 3),
        ],
    ),
    (
        "sched_unit",
        5,
        &[
            ("unit", Ty::U64, 5),
            ("label", Ty::Str, 5),
            ("fp", Ty::Str, 5),
            ("deps", Ty::U64, 5),
            ("est", Ty::U64, 5),
            ("worker", Ty::U64, 5),
            ("start_ms", Ty::NumOrNull, 5),
            ("wall_ms", Ty::NumOrNull, 5),
            ("cycles", Ty::U64, 5),
        ],
    ),
    (
        "domain_window",
        5,
        &[
            ("domain", Ty::U64, 5),
            ("windows", Ty::U64, 5),
            ("window_cycles", Ty::U64, 5),
            ("core_steps", Ty::U64, 5),
            ("partition_steps", Ty::U64, 5),
        ],
    ),
    (
        "cache_tier",
        5,
        &[
            ("tier", Ty::Str, 5),
            ("hits", Ty::U64, 5),
            ("misses", Ty::U64, 5),
            ("stores", Ty::U64, 5),
        ],
    ),
];

fn check_obj_exact(v: &Json, fields: &[(&str, Ty)], ctx: &str) -> Result<(), String> {
    let obj = v
        .as_obj()
        .ok_or_else(|| format!("{ctx}: expected object, got {}", v.type_name()))?;
    if obj.len() != fields.len() {
        let got: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        let want: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        return Err(format!(
            "{ctx}: fields {got:?} do not match schema {want:?}"
        ));
    }
    for ((key, val), (want_key, ty)) in obj.iter().zip(fields) {
        if key != want_key {
            return Err(format!(
                "{ctx}: field '{key}' where schema expects '{want_key}' (order is part of the contract)"
            ));
        }
        check_ty(val, *ty, &format!("{ctx}.{key}"))?;
    }
    Ok(())
}

fn check_hist(v: &Json, ctx: &str) -> Result<(), String> {
    let obj = v
        .as_obj()
        .ok_or_else(|| format!("{ctx}: expected histogram object"))?;
    let want = ["count", "sum", "min", "max", "buckets"];
    if obj.len() != want.len() || obj.iter().zip(want).any(|((k, _), w)| k != w) {
        let got: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        return Err(format!(
            "{ctx}: histogram fields {got:?}, expected {want:?}"
        ));
    }
    let field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{ctx}.{name}: expected non-negative integer"))
    };
    let (count, sum, min, max) = (field("count")?, field("sum")?, field("min")?, field("max")?);
    let buckets: Vec<u64> = v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}.buckets: expected array"))?
        .iter()
        .map(|b| {
            b.as_u64()
                .ok_or_else(|| format!("{ctx}.buckets: non-integer bucket count"))
        })
        .collect::<Result<_, _>>()?;
    // Reuse the simulator's own invariant checks (bucket-count
    // conservation, min ≤ max, bounded bucket vector).
    Histogram::from_parts(count, sum, min, max, &buckets).map_err(|e| format!("{ctx}: {e}"))?;
    Ok(())
}

fn check_ty(v: &Json, ty: Ty, ctx: &str) -> Result<(), String> {
    match ty {
        Ty::U64 => v.as_u64().map(|_| ()).ok_or_else(|| {
            format!(
                "{ctx}: expected non-negative integer, got {}",
                v.type_name()
            )
        }),
        Ty::NumOrNull => match v {
            Json::Null => Ok(()),
            Json::Num(n) if n.is_finite() => Ok(()),
            _ => Err(format!(
                "{ctx}: expected finite number or null, got {}",
                v.type_name()
            )),
        },
        Ty::Str => v
            .as_str()
            .map(|_| ())
            .ok_or_else(|| format!("{ctx}: expected string, got {}", v.type_name())),
        Ty::U64OrNull => match v {
            Json::Null => Ok(()),
            _ => check_ty(v, Ty::U64, ctx),
        },
        Ty::NumArr => {
            let arr = v
                .as_arr()
                .ok_or_else(|| format!("{ctx}: expected array, got {}", v.type_name()))?;
            for (i, item) in arr.iter().enumerate() {
                check_ty(item, Ty::NumOrNull, &format!("{ctx}[{i}]"))?;
            }
            Ok(())
        }
        Ty::StallFracObj => check_obj_exact(
            v,
            &[
                ("mem", Ty::NumOrNull),
                ("struct", Ty::NumOrNull),
                ("idle", Ty::NumOrNull),
            ],
            ctx,
        ),
        Ty::StallCountObj => check_obj_exact(
            v,
            &[
                ("mem", Ty::U64),
                ("exec", Ty::U64),
                ("barrier", Ty::U64),
                ("tlp_capped", Ty::U64),
            ],
            ctx,
        ),
        Ty::Hist => check_hist(v, ctx),
    }
}

/// Validates one trace line; returns the record's kind tag on success.
///
/// # Errors
///
/// Returns a message describing the first violation: malformed JSON, an
/// unknown/misversioned kind, a missing, extra, reordered or mistyped
/// field, or an internally inconsistent histogram.
pub fn validate_line(line: &str) -> Result<&'static str, String> {
    let v = parse(line).map_err(|e| format!("invalid JSON {e}"))?;
    let obj = v
        .as_obj()
        .ok_or_else(|| format!("record must be an object, got {}", v.type_name()))?;
    if obj.len() < 3 || obj[0].0 != "v" || obj[1].0 != "kind" || obj[2].0 != "cycle" {
        return Err("record must start with \"v\", \"kind\", \"cycle\"".to_string());
    }
    let version = obj[0]
        .1
        .as_u64()
        .ok_or("\"v\": expected non-negative integer")?;
    if version == 0 || version > MAX_SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema version {version} (this validator knows 1..={MAX_SCHEMA_VERSION})"
        ));
    }
    let kind = obj[1].1.as_str().ok_or("\"kind\": expected string")?;
    check_ty(&obj[2].1, Ty::U64, "cycle")?;
    let (tag, min_v, fields) = KINDS
        .iter()
        .find(|(k, _, _)| *k == kind)
        .ok_or_else(|| format!("unknown event kind \"{kind}\""))?;
    if version < *min_v {
        return Err(format!(
            "kind \"{kind}\" requires schema version >= {min_v}, record claims v{version}"
        ));
    }
    // A record carries exactly the fields its claimed version defines:
    // later additions are invisible to older records, and an older record
    // must not smuggle them in.
    let fields: Vec<&FieldSpec> = fields
        .iter()
        .filter(|(_, _, since)| version >= *since)
        .collect();
    let rest = &obj[3..];
    if rest.len() != fields.len() {
        let got: Vec<&str> = rest.iter().map(|(k, _)| k.as_str()).collect();
        let want: Vec<&str> = fields.iter().map(|(k, _, _)| *k).collect();
        return Err(format!(
            "kind \"{kind}\": fields {got:?} do not match schema {want:?} for v{version}"
        ));
    }
    for ((key, val), (want_key, ty, _)) in rest.iter().zip(fields) {
        if key != want_key {
            return Err(format!(
                "kind \"{kind}\": field '{key}' where schema expects '{want_key}' (order is part of the contract)"
            ));
        }
        check_ty(val, *ty, &format!("{kind}.{key}"))?;
    }
    Ok(tag)
}

/// Outcome of validating a whole JSONL trace.
#[derive(Debug, Default)]
pub struct ValidationReport {
    /// Total non-empty lines examined.
    pub lines: u64,
    /// Per-kind record counts, in first-seen order.
    pub by_kind: Vec<(&'static str, u64)>,
    /// `(line number, message)` for each invalid line (1-based).
    pub errors: Vec<(u64, String)>,
}

impl ValidationReport {
    /// Whether every line validated.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Validates every non-empty line of a JSONL trace document.
pub fn validate_trace(text: &str) -> ValidationReport {
    let mut report = ValidationReport::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        match validate_line(line) {
            Ok(kind) => match report.by_kind.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => report.by_kind.push((kind, 1)),
            },
            Err(msg) => report.errors.push((i as u64 + 1, msg)),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_version_matches_emitter() {
        assert_eq!(
            MAX_SCHEMA_VERSION,
            gpu_sim::trace::TRACE_SCHEMA_VERSION as u64
        );
    }

    #[test]
    fn accepts_real_emitter_output_for_every_kind() {
        use gpu_sim::trace::{StallBreakdown, TraceEvent};
        use gpu_simt::WarpStalls;
        let mut h = Histogram::new();
        h.record(3);
        h.record(90);
        let events = [
            TraceEvent::WindowSample {
                cycle: 1,
                app: 0,
                eb: 1.5,
                bw: 0.5,
                cmr: f64::NAN,
                l1mr: 0.5,
                l2mr: 0.66,
                ipc: 2.0,
            },
            TraceEvent::TlpDecision {
                cycle: 2,
                app: 1,
                old: 24,
                new: 4,
                reason: "search-sweep",
            },
            TraceEvent::SearchPhase {
                cycle: 3,
                scheme: "PBS-WS".into(),
                phase: "hold".into(),
            },
            TraceEvent::PartitionWindow {
                cycle: 4,
                partition: 0,
                per_app_bw: vec![0.25, f64::INFINITY],
                rowbuf_hit_rate: 0.9,
                queue_depth: 7,
            },
            TraceEvent::CoreWindow {
                cycle: 5,
                core: 2,
                app: 0,
                ipc: 1.0,
                active_warps: 3.5,
                stall: StallBreakdown {
                    mem: 0.25,
                    structural: 0.0,
                    idle: 0.5,
                },
            },
            TraceEvent::CacheStats {
                cycle: 0,
                hits: 1,
                disk_hits: 0,
                misses: 2,
                bypasses: 3,
                stores: 2,
                verified: 0,
                inflight_joined: 1,
            },
            TraceEvent::MetricsWindow {
                cycle: 6,
                app: None,
                stalls: WarpStalls {
                    mem: 5,
                    exec: 2,
                    barrier: 0,
                    tlp_capped: 1,
                },
                dram_lat: h,
                mshr_occ: Histogram::new(),
                queue_depth: Histogram::new(),
                machine_fast_forward_fraction: Some(0.125),
                component_idle_skip_fraction: Some(0.75),
            },
            TraceEvent::ProfileSpan {
                cycle: 0,
                level: "figure".into(),
                name: "fig09".into(),
                depth: 1,
                wall_s: 0.125,
                cycles: 42,
                cache_hits: 0,
                cache_misses: 1,
                workers: 8,
            },
            TraceEvent::SchedUnit {
                cycle: 0,
                unit: 4,
                label: "scheme:BLK_BFS/pbs".into(),
                fp: "00112233445566778899aabbccddeeff".into(),
                deps: 3,
                est: 120_000,
                worker: 2,
                start_ms: 0.5,
                wall_ms: 7.75,
                cycles: 110_000,
            },
            TraceEvent::DomainWindow {
                cycle: 4096,
                domain: 1,
                windows: 64,
                window_cycles: 4096,
                core_steps: 32_768,
                partition_steps: 8_192,
            },
            TraceEvent::CacheTier {
                cycle: 0,
                tier: "memory".into(),
                hits: 1,
                misses: 2,
                stores: 2,
            },
        ];
        for e in &events {
            let line = e.to_json();
            assert_eq!(validate_line(&line), Ok(e.kind()), "{line}");
        }
    }

    #[test]
    fn v5_kinds_and_fields_are_gated_by_record_version() {
        // A v4 cache_stats record predates inflight_joined: the shorter
        // field list validates...
        let v4 = "{\"v\":4,\"kind\":\"cache_stats\",\"cycle\":0,\"hits\":1,\"disk_hits\":0,\
                  \"misses\":2,\"bypasses\":3,\"stores\":2,\"verified\":0";
        assert_eq!(validate_line(&format!("{v4}}}")), Ok("cache_stats"));
        // ...and must not smuggle the v5-only field in.
        assert!(validate_line(&format!("{v4},\"inflight_joined\":1}}")).is_err());
        // The v5 kinds must not claim an older version.
        let err = validate_line(
            "{\"v\":4,\"kind\":\"cache_tier\",\"cycle\":0,\"tier\":\"memory\",\
             \"hits\":1,\"misses\":2,\"stores\":2}",
        )
        .unwrap_err();
        assert!(err.contains("requires schema version >= 5"), "{err}");
    }

    #[test]
    fn rejects_unknown_kind_and_bad_version() {
        assert!(validate_line("{\"v\":3,\"kind\":\"nope\",\"cycle\":0}")
            .unwrap_err()
            .contains("unknown event kind"));
        assert!(
            validate_line("{\"v\":99,\"kind\":\"search_phase\",\"cycle\":0}")
                .unwrap_err()
                .contains("unsupported schema version")
        );
        // v3-only kinds must not claim an older version.
        let err = validate_line(
            "{\"v\":2,\"kind\":\"profile_span\",\"cycle\":0,\"level\":\"run\",\"name\":\"x\",\
             \"depth\":0,\"wall_s\":0.100000,\"cycles\":1,\"cache_hits\":0,\"cache_misses\":0,\
             \"workers\":1}",
        )
        .unwrap_err();
        assert!(err.contains("requires schema version >= 3"), "{err}");
    }

    #[test]
    fn rejects_extra_missing_and_reordered_fields() {
        // Extra field.
        assert!(validate_line(
            "{\"v\":3,\"kind\":\"search_phase\",\"cycle\":0,\"scheme\":\"s\",\"phase\":\"p\",\"x\":1}"
        )
        .is_err());
        // Missing field.
        assert!(
            validate_line("{\"v\":3,\"kind\":\"search_phase\",\"cycle\":0,\"scheme\":\"s\"}")
                .is_err()
        );
        // Reordered fields.
        let err = validate_line(
            "{\"v\":3,\"kind\":\"search_phase\",\"cycle\":0,\"phase\":\"p\",\"scheme\":\"s\"}",
        )
        .unwrap_err();
        assert!(err.contains("order"), "{err}");
    }

    #[test]
    fn metrics_window_fields_are_gated_by_record_version() {
        // A v3 record predates the engine skip fractions: the shorter
        // field list validates...
        let v3 = "{\"v\":3,\"kind\":\"metrics_window\",\"cycle\":0,\"app\":null,\
             \"stalls\":{\"mem\":0,\"exec\":0,\"barrier\":0,\"tlp_capped\":0},\
             \"dram_lat\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]},\
             \"mshr_occ\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]},\
             \"queue_depth\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]}";
        assert_eq!(validate_line(&format!("{v3}}}")), Ok("metrics_window"));
        // ...and a v3 record must not carry the v4-only fields.
        let smuggled = format!(
            "{v3},\"machine_fast_forward_fraction\":0.5,\
             \"component_idle_skip_fraction\":0.5}}"
        );
        assert!(validate_line(&smuggled).is_err());
        // A v4 record without them is missing fields.
        let truncated = format!("{}}}", v3.replacen("\"v\":3", "\"v\":4", 1));
        let err = validate_line(&truncated).unwrap_err();
        assert!(err.contains("do not match schema"), "{err}");
    }

    #[test]
    fn rejects_inconsistent_histograms() {
        // bucket counts sum to 1 but count claims 2.
        let err = validate_line(
            "{\"v\":3,\"kind\":\"metrics_window\",\"cycle\":0,\"app\":null,\
             \"stalls\":{\"mem\":0,\"exec\":0,\"barrier\":0,\"tlp_capped\":0},\
             \"dram_lat\":{\"count\":2,\"sum\":3,\"min\":3,\"max\":3,\"buckets\":[0,0,1]},\
             \"mshr_occ\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]},\
             \"queue_depth\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]}}",
        )
        .unwrap_err();
        assert!(err.contains("dram_lat"), "{err}");
    }

    #[test]
    fn validate_trace_counts_kinds_and_flags_bad_lines() {
        let text = "{\"v\":3,\"kind\":\"search_phase\",\"cycle\":0,\"scheme\":\"s\",\"phase\":\"p\"}\n\
                    \n\
                    not json\n\
                    {\"v\":3,\"kind\":\"search_phase\",\"cycle\":1,\"scheme\":\"s\",\"phase\":\"q\"}\n";
        let report = validate_trace(text);
        assert_eq!(report.lines, 3);
        assert_eq!(report.by_kind, vec![("search_phase", 2)]);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].0, 3);
        assert!(!report.is_ok());
    }
}
