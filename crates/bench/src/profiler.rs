//! Hierarchical self-profiler for campaign runs.
//!
//! A campaign is a tree of phases — campaign → figure → sweep → run — and
//! each phase is wrapped in a [`span`]: the returned guard records, on
//! drop, the phase's wall time, the simulated-cycle delta (via the
//! process-wide counter in [`gpu_sim::metrics::cycles_simulated`]), the
//! result-cache hit/miss deltas (via [`gpu_sim::cache::stats`]) and the
//! worker-pool width.  The finished spans are written to `PROFILE.json`
//! by [`write_profile`] and can be appended to a trace as
//! [`gpu_sim::TraceEvent::ProfileSpan`] events by [`emit_spans`] — so the
//! same `trace-tools` pipeline that analyzes simulator metrics can also
//! answer "where did the campaign's time go?".
//!
//! Spans nest **per thread**: the depth recorded at creation counts only
//! the open spans of the creating thread, so campaign-scheduler workers
//! (which open `unit` spans concurrently with the coordinator's open
//! `campaign`/`figure` spans) attribute correctly instead of inheriting
//! whatever happened to be open elsewhere.  The record list itself stays
//! process-wide and ordered by span *start*.  Guards should be dropped in
//! per-thread LIFO order; the drop handler tolerates out-of-order drops by
//! removing its own entry wherever it sits.

use gpu_sim::trace::{TraceEvent, TraceSink};
use std::path::Path;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// One finished (or in-flight) profiling span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Hierarchy level: `campaign`, `figure`, `sweep` or `run`.
    pub level: String,
    /// Human-readable phase name (figure id, sweep label, …).
    pub name: String,
    /// Nesting depth at creation (0 = campaign root).
    pub depth: u32,
    /// Wall-clock duration in seconds.
    pub wall_s: f64,
    /// Simulated cycles attributed to this span (process-wide delta,
    /// including cycles simulated by worker threads it fanned out to).
    pub cycles: u64,
    /// Result-cache hits (memory + disk) during this span.
    pub cache_hits: u64,
    /// Result-cache misses during this span.
    pub cache_misses: u64,
    /// Worker-pool width available to this span.
    pub workers: u32,
}

struct OpenSpan {
    start: Instant,
    cycles0: u64,
    hits0: u64,
    misses0: u64,
}

struct ProfilerState {
    /// Finished spans, in order of span *start*.
    spans: Vec<SpanRecord>,
    /// Currently open spans: `(index into spans, creating thread, deltas)`.
    /// Depth is computed per creating thread, so concurrent spans on
    /// different threads do not nest under each other.
    open: Vec<(usize, ThreadId, OpenSpan)>,
}

static STATE: Mutex<Option<ProfilerState>> = Mutex::new(None);

fn with_state<R>(f: impl FnOnce(&mut ProfilerState) -> R) -> R {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let state = guard.get_or_insert_with(|| ProfilerState {
        spans: Vec::new(),
        open: Vec::new(),
    });
    f(state)
}

/// Opens a profiling span; the returned guard closes it on drop.
///
/// `level` should be one of `campaign`, `figure`, `sweep`, `run` —
/// the hierarchy documented in `docs/EXPERIMENTS.md` — but any label is
/// accepted (the profiler imposes no vocabulary).
pub fn span(level: &str, name: &str) -> SpanGuard {
    let stats = gpu_sim::cache::stats();
    let thread = std::thread::current().id();
    let idx = with_state(|s| {
        let depth = s.open.iter().filter(|(_, t, _)| *t == thread).count() as u32;
        let idx = s.spans.len();
        s.spans.push(SpanRecord {
            level: level.to_string(),
            name: name.to_string(),
            depth,
            wall_s: 0.0,
            cycles: 0,
            cache_hits: 0,
            cache_misses: 0,
            workers: gpu_sim::exec::worker_count() as u32,
        });
        s.open.push((
            idx,
            thread,
            OpenSpan {
                start: Instant::now(),
                cycles0: gpu_sim::metrics::cycles_simulated(),
                hits0: stats.hits + stats.disk_hits,
                misses0: stats.misses,
            },
        ));
        idx
    });
    SpanGuard { idx }
}

/// Closes its span on drop, recording the deltas accumulated while open.
#[must_use = "dropping the guard immediately records an empty span"]
pub struct SpanGuard {
    idx: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let stats = gpu_sim::cache::stats();
        let cycles_now = gpu_sim::metrics::cycles_simulated();
        with_state(|s| {
            let Some(pos) = s.open.iter().position(|(i, _, _)| *i == self.idx) else {
                return; // already closed (double drop cannot happen, but stay safe)
            };
            let (_, _, open) = s.open.remove(pos);
            let rec = &mut s.spans[self.idx];
            rec.wall_s = open.start.elapsed().as_secs_f64();
            rec.cycles = cycles_now.saturating_sub(open.cycles0);
            rec.cache_hits = (stats.hits + stats.disk_hits).saturating_sub(open.hits0);
            rec.cache_misses = stats.misses.saturating_sub(open.misses0);
        });
    }
}

/// Removes and returns every finished span (open spans stay registered).
pub fn take_spans() -> Vec<SpanRecord> {
    with_state(|s| {
        if s.open.is_empty() {
            return std::mem::take(&mut s.spans);
        }
        // Keep open spans in place: extract only the closed ones, then
        // remap the open indices onto the compacted vector.
        let open_idx: Vec<usize> = s.open.iter().map(|(i, _, _)| *i).collect();
        let mut closed = Vec::new();
        let mut kept = Vec::new();
        let mut remap = vec![usize::MAX; s.spans.len()];
        for (i, rec) in s.spans.drain(..).enumerate() {
            if open_idx.contains(&i) {
                remap[i] = kept.len();
                kept.push(rec);
            } else {
                closed.push(rec);
            }
        }
        s.spans = kept;
        for (i, _, _) in s.open.iter_mut() {
            *i = remap[*i];
        }
        closed
    })
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.6}"));
    } else {
        out.push_str("null");
    }
}

/// Renders spans as the `PROFILE.json` document (stable field order,
/// six-decimal floats, non-finite values as `null` — the same numeric
/// conventions as the trace schema).
pub fn render_profile(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":1,\"workers\":");
    out.push_str(&gpu_sim::exec::worker_count().to_string());
    out.push_str(",\"spans\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"level\":");
        push_json_str(&mut out, &s.level);
        out.push_str(",\"name\":");
        push_json_str(&mut out, &s.name);
        out.push_str(&format!(",\"depth\":{}", s.depth));
        out.push_str(",\"wall_s\":");
        push_json_f64(&mut out, s.wall_s);
        out.push_str(&format!(
            ",\"cycles\":{},\"cache_hits\":{},\"cache_misses\":{},\"workers\":{}}}",
            s.cycles, s.cache_hits, s.cache_misses, s.workers
        ));
    }
    out.push_str("]}\n");
    out
}

/// Writes `render_profile(spans)` to `path`.
pub fn write_profile(path: &Path, spans: &[SpanRecord]) -> std::io::Result<()> {
    std::fs::write(path, render_profile(spans))
}

/// Appends one [`TraceEvent::ProfileSpan`] per span to `sink`.
///
/// The event's `cycle` field carries the process-wide simulated-cycle
/// counter at emit time — profiler spans are wall-clock phenomena, not
/// simulator ones, so they share one timestamp.
pub fn emit_spans<S: TraceSink + ?Sized>(sink: &mut S, spans: &[SpanRecord]) {
    if !sink.enabled() {
        return;
    }
    let cycle = gpu_sim::metrics::cycles_simulated();
    for s in spans {
        sink.emit(TraceEvent::ProfileSpan {
            cycle,
            level: s.level.clone(),
            name: s.name.clone(),
            depth: s.depth,
            wall_s: s.wall_s,
            cycles: s.cycles,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            workers: s.workers,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The profiler is process-global, so tests that mutate it must not
    /// overlap.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_record_depth() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _flush = take_spans(); // isolate from earlier spans in this binary
        {
            let _c = span("campaign", "t-root");
            {
                let _f = span("figure", "t-fig");
                let _s = span("sweep", "t-sweep");
            }
        }
        let spans = take_spans();
        let mine: Vec<_> = spans.iter().filter(|s| s.name.starts_with("t-")).collect();
        assert_eq!(mine.len(), 3);
        assert_eq!(mine[0].depth, 0);
        assert_eq!(mine[1].depth, 1);
        assert_eq!(mine[2].depth, 2);
        assert!(mine.iter().all(|s| s.wall_s >= 0.0));
        assert!(mine.iter().all(|s| s.workers >= 1));
    }

    #[test]
    fn take_spans_keeps_open_spans_registered() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _flush = take_spans();
        let outer = span("campaign", "k-open");
        {
            let _inner = span("figure", "k-closed");
        }
        let closed = take_spans();
        assert!(closed.iter().any(|s| s.name == "k-closed"));
        assert!(!closed.iter().any(|s| s.name == "k-open"));
        drop(outer);
        let rest = take_spans();
        assert!(rest.iter().any(|s| s.name == "k-open"));
    }

    #[test]
    fn spans_attribute_depth_per_thread() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _flush = take_spans();
        // A coordinator span stays open while two worker threads open and
        // close their own spans concurrently. Worker spans must sit at
        // their *own* thread's depth (0, and 1 when nested), not under the
        // coordinator's open span or each other's.
        let outer = span("campaign", "m-root");
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            for w in 0..2 {
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait(); // both workers hold spans open at once
                    let _u = span("unit", &format!("m-unit-{w}"));
                    let _n = span("run", &format!("m-nested-{w}"));
                    barrier.wait(); // ...until both have opened their pair
                });
            }
        });
        drop(outer);
        let spans = take_spans();
        for w in 0..2 {
            let unit = spans
                .iter()
                .find(|s| s.name == format!("m-unit-{w}"))
                .expect("worker span recorded");
            assert_eq!(unit.depth, 0, "worker root span is its thread's root");
            let nested = spans
                .iter()
                .find(|s| s.name == format!("m-nested-{w}"))
                .expect("nested worker span recorded");
            assert_eq!(nested.depth, 1, "nesting counts only the own thread");
        }
        let root = spans.iter().find(|s| s.name == "m-root").unwrap();
        assert_eq!(root.depth, 0);
    }

    #[test]
    fn render_profile_is_valid_shape() {
        let spans = vec![SpanRecord {
            level: "figure".into(),
            name: "fig\"9\"".into(),
            depth: 1,
            wall_s: 0.25,
            cycles: 1000,
            cache_hits: 2,
            cache_misses: 1,
            workers: 4,
        }];
        let json = render_profile(&spans);
        assert!(json.starts_with("{\"schema\":1,"));
        assert!(json.contains("\"name\":\"fig\\\"9\\\"\""));
        assert!(json.contains("\"wall_s\":0.250000"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn non_finite_wall_time_renders_null() {
        let spans = vec![SpanRecord {
            level: "run".into(),
            name: "nan".into(),
            depth: 0,
            wall_s: f64::NAN,
            cycles: 0,
            cache_hits: 0,
            cache_misses: 0,
            workers: 1,
        }];
        assert!(render_profile(&spans).contains("\"wall_s\":null"));
    }
}
