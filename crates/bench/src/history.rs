//! Bench-history tracking: flattened `BENCH_*.json` snapshots appended to
//! `results/BENCH_HISTORY.jsonl`.
//!
//! Every benchmark section `perf_smoke` renders is also appended — as one
//! self-contained JSON line — to a history file, so a run's numbers are
//! never only a point-in-time artifact: `trace-tools bench-trend` walks
//! the history and flags metrics that regressed beyond their per-field
//! thresholds (see `docs/OBSERVABILITY.md`).
//!
//! A history line is the snapshot flattened to scalar fields:
//!
//! ```text
//! {"benchmark":"engine","ts":1754550000,"schema_version":3,"cycles_per_sec":2.41e6,...}
//! ```
//!
//! Top-level numeric and boolean fields keep their names; fields of
//! one-level-nested objects get dotted keys (`serial.cycles_per_sec`);
//! strings (other than the `benchmark` tag), arrays and deeper nesting are
//! dropped — trend analysis only compares scalars.

use crate::json::{self, Json};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders a scalar as its history-line JSON value.
fn push_scalar(out: &mut Vec<(String, String)>, key: String, v: &Json) {
    match v {
        Json::Num(n) if n.is_finite() => out.push((key, format!("{n}"))),
        Json::Bool(b) => out.push((key, b.to_string())),
        _ => {}
    }
}

/// Flattens a `BENCH_*.json` document into its benchmark tag plus dotted
/// scalar key/value pairs (values pre-rendered as JSON text). Returns
/// `None` when `text` is not a JSON object carrying a `benchmark` string.
pub fn flatten(text: &str) -> Option<(String, Vec<(String, String)>)> {
    let doc = json::parse(text).ok()?;
    let fields = doc.as_obj()?;
    let benchmark = doc.get("benchmark")?.as_str()?.to_owned();
    let mut pairs = Vec::new();
    for (k, v) in fields {
        match v {
            Json::Obj(inner) => {
                for (k2, v2) in inner {
                    push_scalar(&mut pairs, format!("{k}.{k2}"), v2);
                }
            }
            _ => push_scalar(&mut pairs, k.clone(), v),
        }
    }
    Some((benchmark, pairs))
}

/// Renders one history line (with trailing newline) from a flattened
/// snapshot and a Unix timestamp.
pub fn render_line(benchmark: &str, ts: u64, pairs: &[(String, String)]) -> String {
    let mut line = format!("{{\"benchmark\":\"{benchmark}\",\"ts\":{ts}");
    for (k, v) in pairs {
        let _ = write!(line, ",\"{k}\":{v}");
    }
    line.push_str("}\n");
    line
}

/// Appends the `BENCH_*.json` document `json_text` to the history file at
/// `path` as one flattened line, stamped with the current Unix time.
/// Creates the file (and its parent directory) on first use.
pub fn append_snapshot(path: &Path, json_text: &str) -> io::Result<()> {
    let Some((benchmark, pairs)) = flatten(json_text) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot is not a BENCH json document",
        ));
    };
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(render_line(&benchmark, ts, &pairs).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
        "benchmark": "cache",
        "schema_version": 3,
        "smoke_mode": true,
        "machine": "small",
        "points": [1, 2, 3],
        "cold": {"seconds": 1.5, "hit_rate": 0.0},
        "warm": {"seconds": 0.25, "hit_rate": 0.875, "identical": true}
    }"#;

    #[test]
    fn flatten_keeps_scalars_and_dots_nested_fields() {
        let (bench, pairs) = flatten(SNAPSHOT).expect("valid snapshot");
        assert_eq!(bench, "cache");
        let get = |k: &str| {
            pairs
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(get("schema_version"), Some("3"));
        assert_eq!(get("smoke_mode"), Some("true"));
        assert_eq!(get("cold.hit_rate"), Some("0"));
        assert_eq!(get("warm.hit_rate"), Some("0.875"));
        assert_eq!(get("warm.identical"), Some("true"));
        // Strings, arrays and the benchmark tag itself are dropped.
        assert_eq!(get("machine"), None);
        assert_eq!(get("points"), None);
        assert_eq!(get("benchmark"), None);
    }

    #[test]
    fn flatten_rejects_non_bench_documents() {
        assert!(flatten("not json").is_none());
        assert!(flatten("{}").is_none());
        assert!(flatten(r#"{"benchmark": 7}"#).is_none());
        assert!(flatten("[1,2]").is_none());
    }

    #[test]
    fn render_line_is_one_json_object_per_line() {
        let (bench, pairs) = flatten(SNAPSHOT).expect("valid snapshot");
        let line = render_line(&bench, 1754550000, &pairs);
        assert!(line.ends_with("}\n"));
        let doc = json::parse(line.trim_end()).expect("line parses back");
        assert_eq!(doc.get("benchmark").and_then(Json::as_str), Some("cache"));
        assert_eq!(doc.get("ts").and_then(Json::as_u64), Some(1754550000));
        assert_eq!(doc.get("warm.hit_rate").and_then(Json::as_num), Some(0.875));
    }
}
