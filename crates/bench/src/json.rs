//! Minimal recursive-descent JSON parser (std-only).
//!
//! `trace-tools` and the schema validator need to *read* the JSONL traces
//! the simulator writes; the workspace has no serde, so this module
//! implements the small subset of JSON the trace emitter produces plus
//! enough generality to reject malformed lines with a useful message.
//! Numbers are parsed as `f64` (every integer the trace emits — cycles,
//! counts — fits exactly in the 53-bit mantissa at realistic magnitudes);
//! object key order is preserved, which the validator relies on to pin
//! the emitter's stable field order.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object's fields in source order, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// A short name for the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs don't appear in trace output;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always a valid boundary walk).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures_preserving_order() {
        let v = parse(r#"{"b":[1,2,{"c":null}],"a":0.500000}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "b");
        assert_eq!(obj[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_num(), Some(0.5));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("4.2").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
    }
}
