//! Figure/table regeneration harness for the `gpu-ebm` reproduction.
//!
//! Every table and figure of the paper's evaluation has a generator in
//! [`figures`], driven by a shared memoizing [`ebm_core::Evaluator`] so a
//! full campaign profiles each application and sweeps each workload only
//! once. One binary per artifact (`fig01` … `fig11`, `tab04`, `hs`,
//! `sens_part`, `threeapp`) regenerates a single figure; the `experiments`
//! binary runs everything and writes each report to `results/<id>.txt`.
//!
//! Run an individual artifact with
//! `cargo run -p ebm-bench --release --bin fig09`, or everything with
//! `cargo run -p ebm-bench --release --bin experiments`.

//!
//! The `experiments` campaign runs, by default, through the [`campaign`]
//! work-graph scheduler: the artifact list is compiled into a
//! fingerprint-deduplicated DAG of measurement units executed across the
//! worker pool, with figures rendered — byte-identically to the serial
//! path — as consumer nodes (`--serial` keeps the old loop).
//!
//! The crate also carries the campaign observability layer:
//!
//! * [`logging`] — the level-gated [`log!`](crate::log) macro behind the
//!   `EBM_LOG` environment variable (`off` | `info` | `debug`);
//! * [`profiler`] — hierarchical self-profiling spans (campaign → figure →
//!   sweep → run) written to `PROFILE.json` and, in traced runs, emitted as
//!   `profile_span` trace events;
//! * [`json`] / [`schema`] — a std-only JSON parser and the strict trace
//!   validator behind the `trace-tools` binary
//!   (`cargo run -p ebm-bench --release --bin trace-tools -- validate <trace>`);
//! * [`history`] — flattened `BENCH_*.json` snapshots appended to
//!   `results/BENCH_HISTORY.jsonl`, compared by `trace-tools bench-trend`.

#![deny(missing_docs)]

pub mod campaign;
pub mod figures;
pub mod history;
pub mod json;
pub mod logging;
pub mod profiler;
pub mod schema;
pub mod util;

pub use util::{out_path, run_and_save, set_out_dir, BenchArgs, Report};

/// Version of the field layout the `perf_smoke` binary writes to
/// `BENCH_engine.json`, `BENCH_parallel.json`, `BENCH_cache.json`,
/// `BENCH_obs.json` and `BENCH_campaign.json` (each file carries it as
/// `schema_version`).
///
/// `docs/BENCH_SCHEMA.md` documents exactly this version, the same way
/// `docs/TRACE_SCHEMA.md` is pinned to the trace emitter's
/// `TRACE_SCHEMA_VERSION`: bump the constant and the doc together whenever a
/// field is added, removed or changes meaning.
///
/// v3 added the counter-gating and noise-floor fields of `BENCH_obs.json`
/// (`counters_off_*`, `counters_on_*`, `noise_floor_pct`); every snapshot
/// is also appended, flattened, to `results/BENCH_HISTORY.jsonl` (see
/// [`history`]).
pub const BENCH_SCHEMA_VERSION: u32 = 3;
