//! Level-gated stderr logging for the campaign binaries.
//!
//! Replaces the scattered bare `eprintln!` status lines: every message goes
//! through the [`log!`](crate::log) macro with a level, and the `EBM_LOG`
//! environment variable (`off` | `info` | `debug`, default `info`) decides
//! what reaches stderr.  Quiet CI runs (`EBM_LOG=off`) and verbose
//! debugging (`EBM_LOG=debug`) are both one env var away.
//!
//! Fatal usage/I/O errors keep using `eprintln!` directly — they must be
//! visible even under `EBM_LOG=off`.

use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide log epoch, pinned on first use (first log line or
/// first `level()` query, whichever comes first).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Seconds elapsed since the first log call of the process — the
/// monotonic timestamp every [`log!`](crate::log) line is prefixed with,
/// so slow campaign phases are identifiable from the log alone.
pub fn elapsed_s() -> f64 {
    epoch().elapsed().as_secs_f64()
}

/// Verbosity of a log message (and of the `EBM_LOG` threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Nothing is printed.
    Off = 0,
    /// Campaign progress lines (the default).
    Info = 1,
    /// Per-sweep/per-run detail.
    Debug = 2,
}

impl LogLevel {
    fn parse(s: &str) -> Option<LogLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" | "quiet" => Some(LogLevel::Off),
            "info" | "1" => Some(LogLevel::Info),
            "debug" | "2" | "verbose" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

/// The process-wide threshold, parsed from `EBM_LOG` once on first use.
/// Unknown values fall back to `info` (never silently to `off`: losing
/// progress output is worse than seeing it).
pub fn level() -> LogLevel {
    static LEVEL: OnceLock<LogLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        // Pin the elapsed-time epoch no later than the first gate check,
        // so the first line's timestamp is ~0 regardless of setup cost.
        let _ = epoch();
        std::env::var("EBM_LOG")
            .ok()
            .and_then(|v| LogLevel::parse(&v))
            .unwrap_or(LogLevel::Info)
    })
}

/// Whether messages at `lvl` should be printed.
pub fn enabled(lvl: LogLevel) -> bool {
    lvl <= level() && level() != LogLevel::Off && lvl != LogLevel::Off
}

/// Prints one progress dot (no newline) at `info` level — the campaign
/// sweep loops' heartbeat.
pub fn progress_dot() {
    if enabled(LogLevel::Info) {
        eprint!(".");
    }
}

/// Ends a progress-dot line at `info` level.
pub fn progress_end() {
    if enabled(LogLevel::Info) {
        eprintln!();
    }
}

/// Logs a formatted message to stderr, gated on `EBM_LOG`. Every line is
/// prefixed with the monotonic seconds elapsed since the process's first
/// log call, e.g. `[   1.204s] cache: 11 hits …`.
///
/// ```
/// ebm_bench::log!(info, "campaign completed in {:.1}s", 12.5);
/// ebm_bench::log!(debug, "sweep point {}", 3);
/// ```
#[macro_export]
macro_rules! log {
    (info, $($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::LogLevel::Info) {
            eprintln!(
                "[{:8.3}s] {}",
                $crate::logging::elapsed_s(),
                format_args!($($arg)*)
            );
        }
    };
    (debug, $($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::LogLevel::Debug) {
            eprintln!(
                "[{:8.3}s] {}",
                $crate::logging::elapsed_s(),
                format_args!($($arg)*)
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_values() {
        assert_eq!(LogLevel::parse("off"), Some(LogLevel::Off));
        assert_eq!(LogLevel::parse("INFO"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse(" debug "), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("nope"), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(LogLevel::Off < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }
}
