//! Campaign work-graph scheduler: fingerprint-deduped, cost-ordered,
//! whole-campaign parallelism.
//!
//! The serial `experiments` campaign runs its 21 artifacts one after
//! another, and each artifact parallelizes only its own inner loops — the
//! alone-profile ladder, one workload's 64-combination sweep, one batch of
//! scheme runs. Between those bursts the worker pool sits idle, and
//! several artifacts quietly re-demand measurements an earlier artifact
//! already produced.
//!
//! This module compiles the campaign into an explicit work graph instead:
//!
//! * [`plan`] walks the same artifact list the serial driver executes and
//!   emits one **work unit** per underlying measurement — an alone
//!   profile, a sweep, a fixed-combination run, a memoized PBS run, a
//!   scheme evaluation — keyed by the *same content-addressed fingerprint*
//!   the persistent result cache uses ([`alone_fingerprint`],
//!   [`sweep_fingerprint`], [`FixedRunInputs::fingerprint`],
//!   [`pbsrun_fingerprint`], [`scheme_fingerprint`]). Planning never
//!   simulates; it is a pure function of the campaign configuration.
//!   Units demanded twice (Fig. 9 and Fig. 10 share every baseline; the
//!   ablation and sampling studies share their PBS paper runs; the
//!   GTO/open-page sensitivity arms are bit-identical to the base config)
//!   collapse into one node — the plan's *dedup ratio*.
//! * [`run`] executes the unit graph over a [`gpu_sim::exec::with_workers`]
//!   pool. The frontier is a max-heap ordered by a per-unit **cost model**
//!   ([`CostModel`]) seeded from the previous run's `PROFILE.json` span
//!   history and falling back to static cycle estimates — so the longest
//!   measurements start first (LPT scheduling) and the tail stays short.
//!   Figures are dependent consumer nodes: the coordinator renders each
//!   one — in the exact serial order — as soon as its units finish, so
//!   artifacts are **byte-identical** to the serial campaign while the
//!   pool keeps simulating ahead.
//!
//! Determinism is inherited, not re-proved: every unit is a pure function
//! of its fingerprint inputs, results land in the shared
//! [`ebm_core::ResultStore`] / [`gpu_sim::cache`] tiers, and renders only
//! read memoized state. A unit the planner missed is recomputed inline by
//! the render (correct, merely slower); a unit computed twice is collapsed
//! by the cache's single-flight tier. Worker panics are caught, flagged,
//! and re-raised on the caller after the pool drains — the
//! "catch-and-flag" pattern [`gpu_sim::exec::with_workers`] documents.
//!
//! [`alone_fingerprint`]: gpu_sim::alone::alone_fingerprint
//! [`sweep_fingerprint`]: ebm_core::sweep::sweep_fingerprint
//! [`FixedRunInputs::fingerprint`]: gpu_sim::harness::FixedRunInputs::fingerprint
//! [`pbsrun_fingerprint`]: ebm_core::pbsrun::pbsrun_fingerprint
//! [`scheme_fingerprint`]: ebm_core::eval::scheme_fingerprint

use crate::figures;
use crate::util::{BenchArgs, Report};
use ebm_core::eval::{scheme_fingerprint, Evaluator, EvaluatorConfig, Scheme};
use ebm_core::metrics::EbObjective;
use ebm_core::pattern::pbs_offline_search;
use ebm_core::pbsrun::{pbsrun_fingerprint, run_pbs_cached, PbsRunSpec};
use ebm_core::scaling::ScalingFactors;
use ebm_core::sweep::{sweep_fingerprint, ComboSweep};
use gpu_sim::alone::{alone_fingerprint, profile_alone};
use gpu_sim::harness::{measure_fixed_cached, FixedRunInputs, RunSpec};
use gpu_sim::trace::{TraceEvent, TraceSink};
use gpu_sim::{cache, exec};
use gpu_types::{Fingerprint, FxHashMap, GpuConfig, TlpCombo, TlpLevel};
use gpu_workloads::{all_apps, by_name, representative_workloads, AppProfile, Workload};
use std::collections::BinaryHeap;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Every campaign artifact, in the serial driver's generation order. The
/// scheduled coordinator renders in exactly this order, so stdout and the
/// `results/` files are byte-identical to the serial campaign.
pub const ARTIFACTS: [&str; 21] = [
    "tab04",
    "fig01",
    "fig02",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "hs",
    "fig11",
    "sens_part",
    "ablation",
    "phased",
    "sampling",
    "sched",
    "ccws",
    "dram_policy",
    "threeapp",
];

/// A work unit's executable body. Results are not returned: they land in
/// the shared [`ebm_core::ResultStore`] and [`gpu_sim::cache`] tiers,
/// where the dependent figure renders re-read them warm.
type UnitFn = Box<dyn FnOnce(&Evaluator) + Send>;

/// A figure render: runs on the coordinator thread only, in serial
/// artifact order, once its units are done.
type RenderFn = Box<dyn FnOnce(&Evaluator, &mut dyn TraceSink) -> Report>;

/// One content-addressed measurement node of the work graph.
struct Unit {
    /// Stable human-readable label (also the cost-model history key).
    label: String,
    /// Content-address of the computation (the dedup key), kept for the
    /// `sched_unit` trace event.
    fp: Fingerprint,
    /// Estimated cost in simulated cycles (higher runs earlier).
    cost: u64,
    /// Indices of units that must finish before this one starts.
    deps: Vec<usize>,
    /// The body, taken exactly once by whichever worker claims the unit.
    run: Mutex<Option<UnitFn>>,
}

/// One artifact: a consumer node depending on the units it reads.
struct FigureNode {
    id: &'static str,
    deps: Vec<usize>,
    render: RenderFn,
}

/// A compiled campaign: the deduplicated unit graph plus the figure
/// consumer nodes, ready for [`run`].
pub struct Campaign {
    units: Vec<Unit>,
    figures: Vec<FigureNode>,
    requested: usize,
}

impl Campaign {
    /// Distinct work units after fingerprint deduplication.
    pub fn planned(&self) -> usize {
        self.units.len()
    }

    /// Unit demands before deduplication (every planning site counts).
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// Number of artifacts the plan will render.
    pub fn n_figures(&self) -> usize {
        self.figures.len()
    }

    /// Fraction of demanded units served by sharing: `1 - planned /
    /// requested` (0 when nothing was demanded).
    pub fn dedup_ratio(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            1.0 - self.planned() as f64 / self.requested as f64
        }
    }
}

/// Per-unit cost estimates, in simulated cycles.
///
/// Seeded from a previous run's `PROFILE.json`: each `unit`-level span's
/// recorded cycle count (or, for cache-served spans that simulated
/// nothing, its wall time converted through the campaign-level
/// cycles-per-second rate) becomes the history entry for that unit's
/// label. Units without history fall back to a static estimate derived
/// from their run specification. Costs only order the ready queue —
/// a wrong estimate costs wall-clock, never correctness.
pub struct CostModel {
    history: FxHashMap<String, u64>,
}

impl CostModel {
    /// An empty model: every unit uses its static fallback estimate.
    pub fn empty() -> Self {
        CostModel {
            history: FxHashMap::default(),
        }
    }

    /// Loads span history from a `PROFILE.json` written by a previous
    /// campaign run; missing or malformed files yield [`CostModel::empty`].
    pub fn load(path: &Path) -> Self {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Self::empty();
        };
        Self::from_profile_json(&text)
    }

    /// Parses the `PROFILE.json` document text (see [`CostModel::load`]).
    pub fn from_profile_json(text: &str) -> Self {
        let mut model = Self::empty();
        let Ok(doc) = crate::json::parse(text) else {
            return model;
        };
        let Some(spans) = doc.get("spans").and_then(crate::json::Json::as_arr) else {
            return model;
        };
        // Cycles-per-second from the campaign root span converts wall time
        // of cache-served (zero-cycle) spans into comparable cost units.
        let mut cps = 0.0f64;
        for s in spans {
            if s.get("level").and_then(crate::json::Json::as_str) == Some("campaign") {
                let cycles = num_field(s, "cycles");
                let wall = num_field(s, "wall_s");
                if wall > 0.0 && cycles > 0.0 {
                    cps = cycles / wall;
                }
            }
        }
        for s in spans {
            if s.get("level").and_then(crate::json::Json::as_str) != Some("unit") {
                continue;
            }
            let Some(name) = s.get("name").and_then(crate::json::Json::as_str) else {
                continue;
            };
            let est = num_field(s, "cycles").max(num_field(s, "wall_s") * cps);
            if est > 0.0 {
                model.history.insert(name.to_owned(), est as u64);
            }
        }
        model
    }

    /// The cost of the unit labelled `label`: its history entry if one
    /// exists, otherwise `fallback` (never 0, so every unit outranks a
    /// hypothetical free one).
    pub fn cost(&self, label: &str, fallback: u64) -> u64 {
        self.history.get(label).copied().unwrap_or(fallback).max(1)
    }

    /// Records an observed cost for `label` (zero observations are
    /// ignored — a cache-served unit teaches the model nothing). This is
    /// how `sched_unit` trace events round-trip into the next run's model:
    /// feed each event's `label` and actual `cycles` back in.
    pub fn observe(&mut self, label: &str, cycles: u64) {
        if cycles > 0 {
            self.history.insert(label.to_owned(), cycles);
        }
    }
}

fn num_field(obj: &crate::json::Json, key: &str) -> f64 {
    obj.get(key)
        .and_then(crate::json::Json::as_num)
        .unwrap_or(0.0)
}

/// Ready-queue entry: max-heap by cost (longest-processing-time first),
/// ties broken toward the lower unit index (earlier in serial order).
#[derive(Debug, PartialEq, Eq)]
struct Ready {
    cost: u64,
    idx: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost
            .cmp(&other.cost)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Builds the unit graph by walking the artifact list.
struct Planner {
    cfg: EvaluatorConfig,
    costs: CostModel,
    units: Vec<Unit>,
    by_fp: FxHashMap<Fingerprint, usize>,
    requested: usize,
}

impl Planner {
    fn new(cfg: EvaluatorConfig, costs: CostModel) -> Self {
        Planner {
            cfg,
            costs,
            units: Vec::new(),
            by_fp: FxHashMap::default(),
            requested: 0,
        }
    }

    /// Registers (or dedups) the unit with content address `fp`. The first
    /// registration wins: a later demand with the same fingerprint names
    /// the same computation, so its label, cost and dependencies are
    /// already correct.
    fn unit(
        &mut self,
        fp: Fingerprint,
        label: String,
        fallback_cost: u64,
        deps: Vec<usize>,
        run: UnitFn,
    ) -> usize {
        self.requested += 1;
        if let Some(&idx) = self.by_fp.get(&fp) {
            return idx;
        }
        let idx = self.units.len();
        let cost = self.costs.cost(&label, fallback_cost);
        self.units.push(Unit {
            label,
            fp,
            cost,
            deps,
            run: Mutex::new(Some(run)),
        });
        self.by_fp.insert(fp, idx);
        idx
    }

    /// Distinct clamped ladder levels on `g` (alone-profile runs per app).
    fn ladder_len(g: &GpuConfig) -> u64 {
        ComboSweep::combos(g, 1).len() as u64
    }

    /// An alone profile through the evaluator's store (base config only).
    fn alone(&mut self, app: &'static AppProfile, n_cores: usize) -> usize {
        let cfg = self.cfg.clone();
        let fp = alone_fingerprint(&cfg.gpu, app, n_cores, cfg.seed, cfg.alone_spec);
        let label = format!("alone:{}@{}", app.name, n_cores);
        let est = Self::ladder_len(&cfg.gpu) * (cfg.alone_spec.warmup + cfg.alone_spec.window);
        self.unit(
            fp,
            label,
            est,
            Vec::new(),
            Box::new(move |ev| {
                ev.alone(app, n_cores);
            }),
        )
    }

    /// An alone profile under a modified machine config (sensitivity arms),
    /// memoized by [`gpu_sim::cache`] rather than the evaluator store.
    fn alone_at(
        &mut self,
        g: &GpuConfig,
        app: &'static AppProfile,
        n_cores: usize,
        spec: RunSpec,
    ) -> usize {
        let seed = self.cfg.seed;
        let fp = alone_fingerprint(g, app, n_cores, seed, spec);
        let label = format!("alone:{}@{}#{}", app.name, n_cores, &fp.to_hex()[..8]);
        let est = Self::ladder_len(g) * (spec.warmup + spec.window);
        let g = g.clone();
        self.unit(
            fp,
            label,
            est,
            Vec::new(),
            Box::new(move |_ev| {
                profile_alone(&g, app, n_cores, seed, spec);
            }),
        )
    }

    /// A 64-combination sweep through the evaluator's store.
    fn sweep(&mut self, w: &Workload) -> usize {
        let cfg = self.cfg.clone();
        let fp = sweep_fingerprint(&cfg.gpu, w, cfg.seed, cfg.sweep_spec);
        let label = format!("sweep:{}", w.name());
        let est = ComboSweep::combos(&cfg.gpu, w.n_apps()).len() as u64
            * (cfg.sweep_spec.warmup + cfg.sweep_spec.window);
        let wl = w.clone();
        self.unit(
            fp,
            label,
            est,
            Vec::new(),
            Box::new(move |ev| {
                ev.sweep(&wl);
            }),
        )
    }

    /// A sweep under a modified machine config.
    fn sweep_at(&mut self, g: &GpuConfig, w: &Workload, spec: RunSpec) -> usize {
        let seed = self.cfg.seed;
        let fp = sweep_fingerprint(g, w, seed, spec);
        let label = format!("sweep:{}#{}", w.name(), &fp.to_hex()[..8]);
        let est = ComboSweep::combos(g, w.n_apps()).len() as u64 * (spec.warmup + spec.window);
        let g = g.clone();
        let wl = w.clone();
        self.unit(
            fp,
            label,
            est,
            Vec::new(),
            Box::new(move |_ev| {
                ComboSweep::measure(&g, &wl, seed, spec);
            }),
        )
    }

    /// A full scheme evaluation. Depends on the workload's alone profiles
    /// (SD denominators, ++bestTLP combination), the sweep for offline
    /// schemes and the ++bestTLP result for `opt*`'s baseline guard — so
    /// the run's warm-up phase is all store hits.
    fn scheme(&mut self, w: &Workload, s: Scheme) -> usize {
        let n = self.cfg.gpu.n_cores / w.n_apps();
        let mut deps: Vec<usize> = Vec::new();
        for app in w.apps() {
            deps.push(self.alone(app, n));
        }
        if matches!(
            s,
            Scheme::PbsOffline(_) | Scheme::BruteForce(_) | Scheme::Opt(_) | Scheme::OptIt
        ) {
            deps.push(self.sweep(w));
        }
        if matches!(s, Scheme::Opt(_)) {
            deps.push(self.scheme(w, Scheme::BestTlp));
        }
        let fp = scheme_fingerprint(&self.cfg, w, s);
        let label = format!("scheme:{}/{}", w.name(), s);
        let est = self.cfg.run_cycles;
        let wl = w.clone();
        self.unit(
            fp,
            label,
            est,
            deps,
            Box::new(move |ev| {
                ev.evaluate(&wl, s);
            }),
        )
    }

    /// A fixed-combination measurement on an explicitly described machine.
    #[allow(clippy::too_many_arguments)]
    fn fixed(
        &mut self,
        g: &GpuConfig,
        apps: Vec<&'static AppProfile>,
        split: Option<Vec<usize>>,
        ccws: bool,
        combo: TlpCombo,
        spec: RunSpec,
    ) -> usize {
        let seed = self.cfg.seed;
        let fp = FixedRunInputs {
            cfg: g,
            apps: &apps,
            core_split: split.as_deref(),
            seed,
            ccws,
        }
        .fingerprint(&combo, spec);
        let names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        let label = format!("fixed:{}@{}#{}", names.join("_"), combo, &fp.to_hex()[..8]);
        let g = g.clone();
        self.unit(
            fp,
            label,
            spec.warmup + spec.window,
            Vec::new(),
            Box::new(move |_ev| {
                let inputs = FixedRunInputs {
                    cfg: &g,
                    apps: &apps,
                    core_split: split.as_deref(),
                    seed,
                    ccws,
                };
                measure_fixed_cached(&inputs, &combo, spec);
            }),
        )
    }

    /// A memoized PBS controller run.
    #[allow(clippy::too_many_arguments)]
    fn pbs(
        &mut self,
        g: &GpuConfig,
        apps: Vec<&'static AppProfile>,
        split: Option<Vec<usize>>,
        start: TlpCombo,
        run_cycles: u64,
        measure_from: u64,
        spec: PbsRunSpec,
    ) -> usize {
        let seed = self.cfg.seed;
        let fp = pbsrun_fingerprint(
            &FixedRunInputs {
                cfg: g,
                apps: &apps,
                core_split: split.as_deref(),
                seed,
                ccws: false,
            },
            &start,
            run_cycles,
            measure_from,
            &spec,
        );
        let names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        let label = format!("pbs:{}#{}", names.join("_"), &fp.to_hex()[..8]);
        let g = g.clone();
        self.unit(
            fp,
            label,
            run_cycles,
            Vec::new(),
            Box::new(move |_ev| {
                let inputs = FixedRunInputs {
                    cfg: &g,
                    apps: &apps,
                    core_split: split.as_deref(),
                    seed,
                    ccws: false,
                };
                run_pbs_cached(&inputs, &start, run_cycles, measure_from, &spec);
            }),
        )
    }

    /// The ++bestTLP fixed run of a workload on the equal-split machine:
    /// the combination comes from the alone profiles (its dependencies),
    /// so the unit's content address is synthetic — a fingerprint over
    /// everything the composite reads.
    fn best_fixed(&mut self, w: &Workload, spec: RunSpec) -> usize {
        let n = self.cfg.gpu.n_cores / w.n_apps();
        let deps: Vec<usize> = w.apps().iter().map(|a| self.alone(a, n)).collect();
        let mut key = cache::KeyBuilder::new("campaign-bestfixed");
        key.push(&self.cfg.gpu)
            .push_u64(self.cfg.seed)
            .push(&self.cfg.alone_spec)
            .push_usize(w.n_apps());
        for app in w.apps() {
            key.push(*app);
        }
        key.push(&spec);
        let fp = key.finish();
        let label = format!("bestfixed:{}", w.name());
        let wl = w.clone();
        self.unit(
            fp,
            label,
            spec.warmup + spec.window,
            deps,
            Box::new(move |ev| {
                let combo = ev.best_tlp_combo(&wl);
                let cfg = ev.config();
                let inputs = FixedRunInputs {
                    cfg: &cfg.gpu,
                    apps: wl.apps(),
                    core_split: None,
                    seed: cfg.seed,
                    ccws: false,
                };
                measure_fixed_cached(&inputs, &combo, spec);
            }),
        )
    }

    /// The offline-PBS fixed run of a workload: the combination comes from
    /// the sweep (its dependency) via [`pbs_offline_search`] on raw EBs.
    fn offline_fixed(&mut self, w: &Workload, spec: RunSpec) -> usize {
        let deps = vec![self.sweep(w)];
        let mut key = cache::KeyBuilder::new("campaign-offlinefixed");
        key.push(&self.cfg.gpu)
            .push_u64(self.cfg.seed)
            .push(&self.cfg.sweep_spec)
            .push_usize(w.n_apps());
        for app in w.apps() {
            key.push(*app);
        }
        key.push(&spec);
        let fp = key.finish();
        let label = format!("offlinefixed:{}", w.name());
        let wl = w.clone();
        self.unit(
            fp,
            label,
            spec.warmup + spec.window,
            deps,
            Box::new(move |ev| {
                let sweep = ev.sweep(&wl);
                let scaling = ScalingFactors::none(wl.n_apps());
                let (combo, _) = pbs_offline_search(&sweep, EbObjective::Ws, &scaling);
                let cfg = ev.config();
                let inputs = FixedRunInputs {
                    cfg: &cfg.gpu,
                    apps: wl.apps(),
                    core_split: None,
                    seed: cfg.seed,
                    ccws: false,
                };
                measure_fixed_cached(&inputs, &combo, spec);
            }),
        )
    }

    /// The ++bestTLP fixed run of an explicit-split mix (three-application
    /// workloads): the combination comes from per-split alone profiles.
    fn best_fixed_split(
        &mut self,
        apps: Vec<&'static AppProfile>,
        per_app: usize,
        alone_spec: RunSpec,
        spec: RunSpec,
        deps: Vec<usize>,
    ) -> usize {
        let seed = self.cfg.seed;
        let mut key = cache::KeyBuilder::new("campaign-bestfixed-split");
        key.push(&self.cfg.gpu)
            .push_u64(seed)
            .push(&alone_spec)
            .push_usize(per_app)
            .push_usize(apps.len());
        for app in &apps {
            key.push(*app);
        }
        key.push(&spec);
        let fp = key.finish();
        let names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        let label = format!("bestfixed3:{}", names.join("_"));
        let g = self.cfg.gpu.clone();
        self.unit(
            fp,
            label,
            spec.warmup + spec.window,
            deps,
            Box::new(move |_ev| {
                let best = TlpCombo::new(
                    apps.iter()
                        .map(|a| profile_alone(&g, a, per_app, seed, alone_spec).best_tlp())
                        .collect(),
                );
                let split = vec![per_app; apps.len()];
                let inputs = FixedRunInputs {
                    cfg: &g,
                    apps: &apps,
                    core_split: Some(&split),
                    seed,
                    ccws: false,
                };
                measure_fixed_cached(&inputs, &best, spec);
            }),
        )
    }
}

/// Compiles the campaign selected by `args` into a [`Campaign`] work
/// graph. Pure: no simulation happens until [`run`]. The cost model is
/// seeded from the output directory's `PROFILE.json` when one exists.
pub fn plan(args: &BenchArgs, ev: &Evaluator) -> Campaign {
    let costs = CostModel::load(&crate::util::out_path("PROFILE.json"));
    plan_with_costs(args, ev, costs)
}

/// [`plan`] with an explicit cost model (tests, benchmarks).
pub fn plan_with_costs(args: &BenchArgs, ev: &Evaluator, costs: CostModel) -> Campaign {
    let mut p = Planner::new(ev.config().clone(), costs);
    let workloads = gpu_workloads::all_workloads();
    let mut figure_nodes = Vec::new();
    for id in ARTIFACTS {
        if !args.wants(id) {
            continue;
        }
        let (deps, render) = plan_artifact(&mut p, id, &workloads);
        figure_nodes.push(FigureNode { id, deps, render });
    }
    Campaign {
        units: p.units,
        figures: figure_nodes,
        requested: p.requested,
    }
}

/// The scheme set of one Fig. 9/10/`hs` column group, baseline first —
/// must stay in step with `figures::scheme_figure`.
fn scheme_set(objective: EbObjective) -> [Scheme; 7] {
    [
        Scheme::BestTlp,
        Scheme::DynCta,
        Scheme::ModBypass,
        Scheme::Pbs(objective),
        Scheme::PbsOffline(objective),
        Scheme::BruteForce(objective),
        Scheme::Opt(objective),
    ]
}

/// Plans one artifact: registers its units and returns the figure node's
/// dependency list plus its render closure. The unit demands here mirror,
/// one for one, what the corresponding generator in [`figures`] reads.
fn plan_artifact(
    p: &mut Planner,
    id: &'static str,
    workloads: &[Workload],
) -> (Vec<usize>, RenderFn) {
    let cfg = p.cfg.clone();
    let gpu = cfg.gpu.clone();
    let n2 = gpu.n_cores / 2;
    let mut deps: Vec<usize> = Vec::new();
    let render: RenderFn = match id {
        "tab04" => {
            for app in all_apps() {
                deps.push(p.alone(app, n2));
            }
            Box::new(|ev, _| figures::tab04(ev))
        }
        "fig01" => {
            let w = Workload::pair("BFS", "FFT");
            for s in [
                Scheme::BestTlp,
                Scheme::MaxTlp,
                Scheme::Opt(EbObjective::Ws),
                Scheme::Opt(EbObjective::Fi),
            ] {
                deps.push(p.scheme(&w, s));
            }
            Box::new(|ev, _| figures::fig01(ev))
        }
        "fig02" => {
            deps.push(p.alone(by_name("BFS").expect("BFS exists"), n2));
            Box::new(|ev, _| figures::fig02(ev))
        }
        "fig03" => {
            for name in ["BFS", "BLK"] {
                deps.push(p.alone(by_name(name).expect("known app"), n2));
            }
            Box::new(|ev, _| figures::fig03(ev))
        }
        "fig04" => {
            for w in representative_workloads() {
                for app in w.apps() {
                    deps.push(p.alone(app, n2));
                }
                deps.push(p.sweep(&w));
            }
            Box::new(|ev, _| figures::fig04(ev))
        }
        "fig05" => {
            for app in all_apps() {
                deps.push(p.alone(app, n2));
            }
            Box::new(|ev, _| figures::fig05(ev))
        }
        "fig06" => {
            deps.push(p.sweep(&Workload::pair("BLK", "TRD")));
            Box::new(|ev, _| figures::fig06(ev))
        }
        "fig07" => {
            let w = Workload::pair("BLK", "TRD");
            for app in w.apps() {
                deps.push(p.alone(app, n2));
            }
            deps.push(p.sweep(&w));
            Box::new(|ev, _| figures::fig07(ev))
        }
        "fig08" => Box::new(|_, _| figures::fig08()),
        "fig09" | "fig10" | "hs" => {
            let objective = match id {
                "fig09" => EbObjective::Ws,
                "fig10" => EbObjective::Fi,
                _ => EbObjective::Hs,
            };
            for w in workloads {
                for s in scheme_set(objective) {
                    deps.push(p.scheme(w, s));
                }
            }
            let ws = workloads.to_vec();
            match id {
                "fig09" => Box::new(move |ev, _| figures::fig09(ev, &ws)),
                "fig10" => Box::new(move |ev, _| figures::fig10(ev, &ws)),
                _ => Box::new(move |ev, _| figures::hs_results(ev, &ws)),
            }
        }
        // Fig. 11 is a traced run: streaming events to the sink is not a
        // pure function of the run inputs, so it stays inline on the
        // coordinator (still deterministic — same config, same seed).
        "fig11" => Box::new(|ev, sink| figures::fig11_traced(ev, sink)),
        "sens_part" => {
            let spec = RunSpec::new(10_000, 25_000);
            let w = Workload::pair("BLK", "BFS");
            let total = gpu.n_cores;
            let quarter = (total / 4).max(1);
            for (c0, c1) in [
                (quarter, total - quarter),
                (total / 2, total - total / 2),
                (total - quarter, quarter),
            ] {
                for (app, c) in w.apps().iter().zip([c0, c1]) {
                    deps.push(p.alone_at(&gpu, app, c, spec));
                }
                for combo in ComboSweep::combos(&gpu, 2) {
                    deps.push(p.fixed(
                        &gpu,
                        w.apps().to_vec(),
                        Some(vec![c0, c1]),
                        false,
                        combo,
                        spec,
                    ));
                }
            }
            let w2 = Workload::pair("BFS", "FFT");
            for l2_kb in [64u64, 128, 256] {
                let mut g = gpu.clone();
                g.l2.capacity_bytes = l2_kb * 1024;
                let n = g.n_cores / 2;
                for app in w2.apps() {
                    deps.push(p.alone_at(&g, app, n, spec));
                }
                deps.push(p.sweep_at(&g, &w2, spec));
            }
            Box::new(|ev, _| figures::sens_part(ev))
        }
        "ablation" => {
            let spec = RunSpec::new(cfg.measure_from, cfg.run_cycles - cfg.measure_from);
            let paper = PbsRunSpec::paper(EbObjective::Ws, cfg.pbs_hold_windows);
            let variants = [
                paper,
                PbsRunSpec {
                    probe: Some(TlpLevel::MAX),
                    ..paper
                },
                PbsRunSpec {
                    settle: false,
                    ..paper
                },
                PbsRunSpec {
                    table_pick: false,
                    ..paper
                },
            ];
            for (a, b) in [
                ("BLK", "BFS"),
                ("BFS", "FFT"),
                ("DS", "TRD"),
                ("JPEG", "LIB"),
            ] {
                let w = Workload::pair(a, b);
                deps.push(p.best_fixed(&w, spec));
                for v in variants {
                    deps.push(p.pbs(
                        &gpu,
                        w.apps().to_vec(),
                        None,
                        TlpCombo::uniform(gpu.max_tlp(), 2),
                        cfg.run_cycles,
                        cfg.measure_from,
                        v,
                    ));
                }
            }
            Box::new(|ev, _| figures::ablation(ev))
        }
        "phased" => {
            let spec = RunSpec::new(cfg.measure_from, cfg.run_cycles - cfg.measure_from);
            let mixes = [
                Workload::from_profiles(vec![
                    &gpu_workloads::PH1,
                    by_name("TRD").expect("known app"),
                ]),
                Workload::from_profiles(vec![
                    &gpu_workloads::PH1,
                    by_name("BLK").expect("known app"),
                ]),
                Workload::from_profiles(vec![
                    &gpu_workloads::PH2,
                    by_name("SCP").expect("known app"),
                ]),
            ];
            for w in mixes {
                deps.push(p.best_fixed(&w, spec));
                deps.push(p.offline_fixed(&w, spec));
                deps.push(p.pbs(
                    &gpu,
                    w.apps().to_vec(),
                    None,
                    TlpCombo::uniform(gpu.max_tlp(), 2),
                    cfg.run_cycles,
                    cfg.measure_from,
                    PbsRunSpec::paper(EbObjective::Ws, 60),
                ));
            }
            Box::new(|ev, _| figures::phased(ev))
        }
        "sampling" => {
            let spec = RunSpec::new(cfg.measure_from, cfg.run_cycles - cfg.measure_from);
            for (a, b) in [
                ("BLK", "BFS"),
                ("BFS", "FFT"),
                ("JPEG", "LIB"),
                ("DS", "TRD"),
            ] {
                let w = Workload::pair(a, b);
                deps.push(p.best_fixed(&w, spec));
                // designated = false is bit-identical to the base config,
                // so that arm's PBS run dedups against the ablation's
                // paper-variant run of the same mix.
                for designated in [false, true] {
                    let mut g = gpu.clone();
                    g.sampling.designated = designated;
                    deps.push(p.pbs(
                        &g,
                        w.apps().to_vec(),
                        None,
                        TlpCombo::uniform(g.max_tlp(), 2),
                        cfg.run_cycles,
                        cfg.measure_from,
                        PbsRunSpec::paper(EbObjective::Ws, cfg.pbs_hold_windows),
                    ));
                }
            }
            Box::new(|ev, _| figures::sampling(ev))
        }
        "sched" => {
            let spec = RunSpec::new(10_000, 25_000);
            let policies = [
                gpu_types::WarpSchedPolicy::Gto,
                gpu_types::WarpSchedPolicy::Lrr,
            ];
            for policy in policies {
                let mut g = gpu.clone();
                g.scheduler = policy;
                deps.push(p.alone_at(&g, by_name("BFS").expect("BFS exists"), g.n_cores / 2, spec));
            }
            for (a, b) in [("BLK", "BFS"), ("BFS", "FFT")] {
                let w = Workload::pair(a, b);
                for policy in policies {
                    let mut g = gpu.clone();
                    g.scheduler = policy;
                    let n = g.n_cores / 2;
                    for app in w.apps() {
                        deps.push(p.alone_at(&g, app, n, spec));
                    }
                    deps.push(p.sweep_at(&g, &w, spec));
                }
            }
            Box::new(|ev, _| figures::sched(ev))
        }
        "ccws" => {
            for name in ["BFS", "FFT", "HS", "BLK"] {
                let app = by_name(name).expect("known app");
                deps.push(p.alone(app, n2));
                deps.push(p.fixed(
                    &gpu,
                    vec![app],
                    Some(vec![n2]),
                    true,
                    TlpCombo::uniform(gpu.max_tlp(), 1),
                    RunSpec::new(80_000, 40_000),
                ));
            }
            for (a, b) in [("BLK", "BFS"), ("BFS", "FFT"), ("DS", "TRD")] {
                let w = Workload::pair(a, b);
                for s in [
                    Scheme::BestTlp,
                    Scheme::Ccws,
                    Scheme::DynCta,
                    Scheme::Pbs(EbObjective::Ws),
                ] {
                    deps.push(p.scheme(&w, s));
                }
            }
            Box::new(|ev, _| figures::ccws(ev))
        }
        "dram_policy" => {
            let spec = RunSpec::new(10_000, 25_000);
            let policies = [gpu_types::PagePolicy::Open, gpu_types::PagePolicy::Closed];
            for name in ["BLK", "GUPS"] {
                let app = by_name(name).expect("known app");
                for policy in policies {
                    let mut g = gpu.clone();
                    g.dram.page_policy = policy;
                    deps.push(p.fixed(
                        &g,
                        vec![app],
                        Some(vec![g.n_cores / 2]),
                        false,
                        TlpCombo::uniform(g.max_tlp(), 1),
                        spec,
                    ));
                }
            }
            let w = Workload::pair("BFS", "FFT");
            for policy in policies {
                let mut g = gpu.clone();
                g.dram.page_policy = policy;
                let n = g.n_cores / 2;
                for app in w.apps() {
                    deps.push(p.alone_at(&g, app, n, spec));
                }
                deps.push(p.sweep_at(&g, &w, spec));
            }
            Box::new(|ev, _| figures::dram_policy(ev))
        }
        "threeapp" => {
            let per_app = (gpu.n_cores / 3).max(1);
            let alone_spec = RunSpec::new(10_000, 25_000);
            let run_spec = RunSpec::new(3_000, 300_000);
            let mixes: [[&str; 3]; 4] = [
                ["BLK", "BFS", "FFT"],
                ["TRD", "DS", "JPEG"],
                ["SCP", "HS", "GUPS"],
                ["LIB", "BLK", "BFS"],
            ];
            for mix in mixes {
                let apps: Vec<&'static AppProfile> = mix
                    .iter()
                    .map(|name| by_name(name).expect("known app"))
                    .collect();
                let adeps: Vec<usize> = apps
                    .iter()
                    .map(|a| p.alone_at(&gpu, a, per_app, alone_spec))
                    .collect();
                deps.extend(adeps.iter().copied());
                deps.push(p.best_fixed_split(apps.clone(), per_app, alone_spec, run_spec, adeps));
                deps.push(p.fixed(
                    &gpu,
                    apps.clone(),
                    Some(vec![per_app; 3]),
                    false,
                    TlpCombo::uniform(gpu.max_tlp(), 3),
                    run_spec,
                ));
                deps.push(p.pbs(
                    &gpu,
                    apps,
                    Some(vec![per_app; 3]),
                    TlpCombo::uniform(gpu.max_tlp(), 3),
                    300_000,
                    3_000,
                    PbsRunSpec::paper(EbObjective::Ws, 150),
                ));
            }
            Box::new(|ev, _| figures::threeapp(ev))
        }
        other => unreachable!("unknown artifact id {other}"),
    };
    (deps, render)
}

/// Execution statistics of one scheduled campaign run (the `sched:` log
/// line and the `BENCH_campaign.json` inputs).
#[derive(Debug, Clone)]
pub struct CampaignStats {
    /// Unit demands before deduplication.
    pub requested: usize,
    /// Distinct units in the executed graph.
    pub planned: usize,
    /// Units actually executed (== planned unless a panic aborted the run).
    pub executed: usize,
    /// Pool width the graph ran over.
    pub workers: usize,
    /// Peak ready-queue depth observed.
    pub peak_ready: usize,
    /// Wall-clock of the whole scheduled campaign, seconds.
    pub wall_s: f64,
    /// Summed busy time across all workers, seconds.
    pub busy_s: f64,
    /// Result-cache hits (memory + disk) during the run.
    pub cache_hits: u64,
    /// Concurrent duplicate computations joined by the cache's
    /// single-flight tier during the run.
    pub inflight_joined: u64,
}

impl CampaignStats {
    /// `1 - planned / requested` (see [`Campaign::dedup_ratio`]).
    pub fn dedup_ratio(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            1.0 - self.planned as f64 / self.requested as f64
        }
    }

    /// Fraction of the pool's wall-clock capacity spent executing units.
    pub fn utilization(&self) -> f64 {
        let capacity = self.workers as f64 * self.wall_s;
        if capacity > 0.0 {
            (self.busy_s / capacity).min(1.0)
        } else {
            0.0
        }
    }
}

/// Runtime record of one executed unit, captured by the worker that ran
/// it and folded into the `sched_unit` trace events after the pool drains.
#[derive(Clone, Copy, Default)]
struct UnitRuntime {
    /// Pool worker index that claimed the unit.
    worker: u64,
    /// Milliseconds from campaign start to unit start.
    start_ms: f64,
    /// Wall-clock milliseconds the unit ran for.
    wall_ms: f64,
    /// Simulated cycles the worker thread attributed to the unit.
    cycles: u64,
}

struct SchedState {
    ready: BinaryHeap<Ready>,
    blocked: Vec<usize>,
    done: Vec<bool>,
    remaining: usize,
    executed: usize,
    peak_ready: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

fn lock<'a>(state: &'a Mutex<SchedState>) -> MutexGuard<'a, SchedState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Executes a compiled [`Campaign`]: units run over an
/// [`exec::with_workers`] pool, longest-estimated first; the coordinator
/// renders each figure in serial artifact order as soon as its units are
/// done and hands the report to `emit` (the `experiments` binary passes
/// [`crate::util::run_and_save`]; benchmarks pass a no-op to keep stdout
/// clean). Worker panics re-raise on the caller after the pool drains.
pub fn run(
    campaign: Campaign,
    ev: &Evaluator,
    sink: &mut dyn TraceSink,
    emit: &mut dyn FnMut(&Report),
) -> CampaignStats {
    let Campaign {
        units,
        figures: figure_nodes,
        requested,
    } = campaign;
    let planned = units.len();
    let stats0 = cache::stats();
    let t0 = Instant::now();
    let workers = exec::worker_count();

    // Dependency edges: per-unit blocker counts plus the reverse adjacency
    // (self-edges and duplicates dropped — a unit never waits on itself).
    let mut blocked = vec![0usize; planned];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); planned];
    for (i, u) in units.iter().enumerate() {
        let mut ds: Vec<usize> = u.deps.iter().copied().filter(|&d| d != i).collect();
        ds.sort_unstable();
        ds.dedup();
        blocked[i] = ds.len();
        for d in ds {
            dependents[d].push(i);
        }
    }
    let state = Mutex::new(SchedState {
        ready: BinaryHeap::new(),
        blocked,
        done: vec![false; planned],
        remaining: planned,
        executed: 0,
        peak_ready: 0,
        panic: None,
    });
    {
        let mut s = lock(&state);
        for (i, u) in units.iter().enumerate() {
            if s.blocked[i] == 0 {
                s.ready.push(Ready {
                    cost: u.cost,
                    idx: i,
                });
            }
        }
        s.peak_ready = s.ready.len();
    }
    let cvar = Condvar::new();
    let busy_ns = AtomicU64::new(0);
    let runtimes: Vec<Mutex<Option<UnitRuntime>>> =
        (0..planned).map(|_| Mutex::new(None)).collect();
    let units = &units;
    let dependents = &dependents;
    let state = &state;
    let cvar = &cvar;
    let busy_ns = &busy_ns;
    let runtimes = &runtimes;

    let worker = |w: usize| loop {
        let idx = {
            let mut s = lock(state);
            loop {
                if s.panic.is_some() || s.remaining == 0 {
                    return;
                }
                if let Some(top) = s.ready.pop() {
                    break top.idx;
                }
                s = cvar.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        };
        let job = units[idx]
            .run
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        let started = Instant::now();
        let cycles0 = gpu_sim::metrics::thread_cycles_simulated();
        // Catch the panic instead of dying: a dead worker would leave the
        // coordinator (and its siblings) blocked on the condvar forever.
        // The payload is stored first-wins and re-raised by the caller.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(job) = job {
                let _span = crate::profiler::span("unit", &units[idx].label);
                job(ev);
            }
        }));
        let wall = started.elapsed();
        busy_ns.fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        *runtimes[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(UnitRuntime {
            worker: w as u64,
            start_ms: started.duration_since(t0).as_secs_f64() * 1e3,
            wall_ms: wall.as_secs_f64() * 1e3,
            cycles: gpu_sim::metrics::thread_cycles_simulated().saturating_sub(cycles0),
        });
        let mut s = lock(state);
        if let Err(payload) = outcome {
            if s.panic.is_none() {
                s.panic = Some(payload);
            }
        }
        s.done[idx] = true;
        s.remaining -= 1;
        s.executed += 1;
        // A panicked unit still unblocks its dependents: with the panic
        // flag set every worker exits before claiming them, and on the
        // (impossible) path where it is raced, a dependent merely
        // recomputes its missing input inline.
        for &d in &dependents[idx] {
            s.blocked[d] -= 1;
            if s.blocked[d] == 0 {
                s.ready.push(Ready {
                    cost: units[d].cost,
                    idx: d,
                });
            }
        }
        s.peak_ready = s.peak_ready.max(s.ready.len());
        drop(s);
        cvar.notify_all();
    };

    // Reborrow the sink for the coordinator so it is available again for
    // the sched_unit emission after the pool drains.
    let sink2: &mut dyn TraceSink = &mut *sink;
    let coordinator = move || {
        let sink = sink2;
        for fig in figure_nodes {
            {
                let mut s = lock(state);
                while s.panic.is_none() && fig.deps.iter().any(|&d| !s.done[d]) {
                    s = cvar.wait(s).unwrap_or_else(|e| e.into_inner());
                }
                if s.panic.is_some() {
                    return;
                }
            }
            crate::log!(debug, "starting {}", fig.id);
            let _span = crate::profiler::span("figure", fig.id);
            let report = (fig.render)(ev, sink);
            emit(&report);
        }
    };

    exec::with_workers(workers, worker, coordinator);

    if let Some(payload) = lock(state).panic.take() {
        std::panic::resume_unwind(payload);
    }

    let (executed, peak_ready) = {
        let s = lock(state);
        (s.executed, s.peak_ready)
    };
    // One sched_unit event per unit, in plan order. The identity fields
    // are deterministic; the runtime fields describe this execution and
    // feed the next run's cost model (`CostModel::observe`).
    if sink.enabled() {
        for (i, u) in units.iter().enumerate() {
            let rt = runtimes[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .unwrap_or_default();
            sink.emit(TraceEvent::SchedUnit {
                cycle: 0,
                unit: i as u64,
                label: u.label.clone(),
                fp: u.fp.to_hex(),
                deps: u.deps.len() as u64,
                est: u.cost,
                worker: rt.worker,
                start_ms: rt.start_ms,
                wall_ms: rt.wall_ms,
                cycles: rt.cycles,
            });
        }
    }
    let stats1 = cache::stats();
    let stats = CampaignStats {
        requested,
        planned,
        executed,
        workers,
        peak_ready,
        wall_s: t0.elapsed().as_secs_f64(),
        busy_s: busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
        cache_hits: (stats1.hits + stats1.disk_hits).saturating_sub(stats0.hits + stats0.disk_hits),
        inflight_joined: stats1
            .inflight_joined
            .saturating_sub(stats0.inflight_joined),
    };
    crate::log!(
        info,
        "sched: {} units scheduled ({} requested, {:.0}% deduped), {} cache hits, \
         {} in-flight joins, peak ready {}, {} workers, utilization {:.2}",
        stats.planned,
        stats.requested,
        100.0 * stats.dedup_ratio(),
        stats.cache_hits,
        stats.inflight_joined,
        stats.peak_ready,
        stats.workers,
        stats.utilization()
    );
    publish_sched_counters(&stats);
    stats
}

/// Publishes one run's execution statistics onto the `sched.*` gauges of
/// the [`gpu_sim::counters`] telemetry bus. Like the `engine.*` gauges,
/// these are last-writer-wins snapshots of the most recent campaign.
fn publish_sched_counters(stats: &CampaignStats) {
    use gpu_sim::counters::{counter, Counter};
    struct Gauges {
        requested: &'static Counter,
        planned: &'static Counter,
        executed: &'static Counter,
        workers: &'static Counter,
        peak_ready: &'static Counter,
        busy_ns: &'static Counter,
        cache_hits: &'static Counter,
        inflight_joined: &'static Counter,
    }
    static GAUGES: std::sync::OnceLock<Gauges> = std::sync::OnceLock::new();
    let g = GAUGES.get_or_init(|| Gauges {
        requested: counter("sched.requested"),
        planned: counter("sched.planned"),
        executed: counter("sched.executed"),
        workers: counter("sched.workers"),
        peak_ready: counter("sched.peak_ready"),
        busy_ns: counter("sched.busy_ns"),
        cache_hits: counter("sched.cache_hits"),
        inflight_joined: counter("sched.inflight_joined"),
    });
    g.requested.set(stats.requested as u64);
    g.planned.set(stats.planned as u64);
    g.executed.set(stats.executed as u64);
    g.workers.set(stats.workers as u64);
    g.peak_ready.set(stats.peak_ready as u64);
    g.busy_ns.set((stats.busy_s * 1e9) as u64);
    g.cache_hits.set(stats.cache_hits);
    g.inflight_joined.set(stats.inflight_joined);
}

/// Emits one `sched_unit` event per planned unit with the runtime fields
/// zeroed. The serial campaign driver calls this so a serial trace carries
/// the same deterministic plan records (`unit`, `label`, `fp`, `deps`,
/// `est`) a scheduled run would — `trace-tools report` renders its
/// default (deterministic) sections byte-identically from either.
pub fn emit_plan(campaign: &Campaign, sink: &mut dyn TraceSink) {
    if !sink.enabled() {
        return;
    }
    for (i, u) in campaign.units.iter().enumerate() {
        sink.emit(TraceEvent::SchedUnit {
            cycle: 0,
            unit: i as u64,
            label: u.label.clone(),
            fp: u.fp.to_hex(),
            deps: u.deps.len() as u64,
            est: u.cost,
            worker: 0,
            start_ms: 0.0,
            wall_ms: 0.0,
            cycles: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebm_core::eval::EvaluatorConfig;

    #[test]
    fn ready_orders_by_cost_then_index() {
        let mut heap = BinaryHeap::new();
        heap.push(Ready { cost: 5, idx: 9 });
        heap.push(Ready { cost: 20, idx: 3 });
        heap.push(Ready { cost: 20, idx: 1 });
        heap.push(Ready { cost: 1, idx: 0 });
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop().map(|r| r.idx)).collect();
        // Highest cost first; equal costs break toward the lower index.
        assert_eq!(order, vec![1, 3, 9, 0]);
    }

    #[test]
    fn cost_model_reads_unit_spans_and_cps() {
        let profile = r#"{"schema":1,"workers":4,"spans":[
            {"level":"campaign","name":"experiments","depth":0,"wall_s":2.0,
             "cycles":2000000,"cache_hits":0,"cache_misses":0,"workers":4},
            {"level":"unit","name":"sweep:BLK_BFS","depth":0,"wall_s":0.4,
             "cycles":450000,"cache_hits":0,"cache_misses":1,"workers":4},
            {"level":"unit","name":"alone:BFS@8","depth":0,"wall_s":0.1,
             "cycles":0,"cache_hits":1,"cache_misses":0,"workers":4},
            {"level":"figure","name":"fig09","depth":0,"wall_s":1.0,
             "cycles":1,"cache_hits":0,"cache_misses":0,"workers":4}
        ]}"#;
        let m = CostModel::from_profile_json(profile);
        // Simulated spans report their own cycles (which exceed the
        // wall-time estimate of 0.4 s x 1M cycles/s here).
        assert_eq!(m.cost("sweep:BLK_BFS", 7), 450_000);
        // Cache-served spans convert wall time at 1M cycles/s.
        assert_eq!(m.cost("alone:BFS@8", 7), 100_000);
        // Figure spans are not unit history; unknown labels use the
        // fallback.
        assert_eq!(m.cost("fig09", 7), 7);
        assert_eq!(m.cost("unseen", 123), 123);
    }

    #[test]
    fn cost_model_tolerates_garbage() {
        assert_eq!(CostModel::from_profile_json("not json").cost("x", 9), 9);
        assert_eq!(CostModel::from_profile_json("{}").cost("x", 9), 9);
    }

    #[test]
    fn full_plan_dedups_shared_units() {
        let ev = Evaluator::new(EvaluatorConfig::quick());
        let args = BenchArgs::default();
        let plan = plan_with_costs(&args, &ev, CostModel::empty());
        assert_eq!(plan.n_figures(), ARTIFACTS.len());
        // Fig. 9/10/hs share baselines, tab04/fig05 share every alone
        // profile, the sensitivity arms fold into the base config: the
        // full campaign must dedup substantially.
        assert!(
            plan.requested() > plan.planned(),
            "campaign shares no units? requested {} planned {}",
            plan.requested(),
            plan.planned()
        );
        assert!(plan.dedup_ratio() > 0.2, "ratio {}", plan.dedup_ratio());
        // Dependencies stay in bounds and acyclic-by-construction (deps
        // always point at already-registered, lower-indexed units).
        for (i, u) in plan.units.iter().enumerate() {
            assert!(u.deps.iter().all(|&d| d < i), "unit {i} has forward dep");
            assert!(u.cost >= 1);
        }
    }

    #[test]
    fn only_subset_plans_sub_dag() {
        let ev = Evaluator::new(EvaluatorConfig::quick());
        let full = plan_with_costs(&BenchArgs::default(), &ev, CostModel::empty());
        let args = BenchArgs {
            only: Some(vec!["fig02".into(), "fig06".into()]),
            ..BenchArgs::default()
        };
        let sub = plan_with_costs(&args, &ev, CostModel::empty());
        assert_eq!(sub.n_figures(), 2);
        assert!(sub.planned() < full.planned());
        // fig02 needs one alone profile, fig06 one sweep.
        assert_eq!(sub.planned(), 2);
    }

    #[test]
    fn overlapping_figures_dedup_across_the_only_subset() {
        let ev = Evaluator::new(EvaluatorConfig::quick());
        // tab04 and fig05 read the same 26 alone profiles.
        let args = BenchArgs {
            only: Some(vec!["tab04".into(), "fig05".into()]),
            ..BenchArgs::default()
        };
        let plan = plan_with_costs(&args, &ev, CostModel::empty());
        assert_eq!(plan.planned(), all_apps().len());
        assert_eq!(plan.requested(), 2 * all_apps().len());
        assert!(plan.dedup_ratio() > 0.49);
    }

    #[test]
    fn scheduled_run_matches_serial_render() {
        // Plan and run a small sub-campaign, then compare every emitted
        // report against a fresh serial render.
        cache::clear_memory();
        let ev = Evaluator::new(EvaluatorConfig::quick());
        let args = BenchArgs {
            only: Some(vec!["fig02".into(), "fig03".into(), "fig06".into()]),
            ..BenchArgs::default()
        };
        let plan = plan_with_costs(&args, &ev, CostModel::empty());
        let mut rendered = Vec::new();
        let stats = run(plan, &ev, &mut gpu_sim::trace::NullSink, &mut |r| {
            rendered.push((r.id().to_owned(), r.render()))
        });
        assert_eq!(stats.executed, stats.planned);
        assert_eq!(
            rendered
                .iter()
                .map(|(id, _)| id.as_str())
                .collect::<Vec<_>>(),
            vec!["fig02", "fig03", "fig06"],
            "renders follow serial artifact order"
        );
        let serial_ev = Evaluator::new(EvaluatorConfig::quick());
        let serial = [
            figures::fig02(&serial_ev).render(),
            figures::fig03(&serial_ev).render(),
            figures::fig06(&serial_ev).render(),
        ];
        for ((id, got), want) in rendered.iter().zip(&serial) {
            assert_eq!(got, want, "{id} diverges from the serial render");
        }
    }

    #[test]
    fn panicking_unit_propagates_after_drain() {
        let ev = Evaluator::new(EvaluatorConfig::quick());
        let campaign = Campaign {
            units: vec![Unit {
                label: "boom".into(),
                fp: Fingerprint(0),
                cost: 1,
                deps: Vec::new(),
                run: Mutex::new(Some(Box::new(|_| panic!("unit exploded")))),
            }],
            figures: Vec::new(),
            requested: 1,
        };
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run(campaign, &ev, &mut gpu_sim::trace::NullSink, &mut |_| {});
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("unit exploded"), "payload: {msg}");
    }
}
