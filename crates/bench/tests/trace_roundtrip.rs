//! Round-trip tests between the trace emitter (`gpu_sim::trace`) and the
//! consuming side in this crate (`ebm_bench::json` + `ebm_bench::schema`):
//! a real traced run must validate line-by-line, six-decimal float
//! formatting must survive the parse, and non-finite floats must round-trip
//! as JSON `null` for every event kind that carries floats.

use ebm_bench::json::{parse, Json};
use ebm_bench::schema::{validate_line, validate_trace};
use ebm_core::metrics::EbObjective;
use ebm_core::policy::pbs::PbsScaling;
use ebm_core::Pbs;
use gpu_sim::control::Controller;
use gpu_sim::harness::run_controlled_traced;
use gpu_sim::machine::Gpu;
use gpu_sim::trace::{JsonlSink, StallBreakdown, TraceEvent, TraceSink};
use gpu_simt::WarpStalls;
use gpu_types::{GpuConfig, Histogram, TlpCombo};
use gpu_workloads::Workload;

/// Every event kind with awkward floats (values that need rounding) and
/// non-finite values mixed in. `cache_stats` carries no floats but is
/// included so the list stays exhaustive — a new kind that is not added
/// here fails the count assertion below.
fn one_of_each_kind() -> Vec<TraceEvent> {
    let mut h = Histogram::new();
    h.record(7);
    h.record(3000);
    vec![
        TraceEvent::WindowSample {
            cycle: 1,
            app: 0,
            eb: 1.0 / 3.0,
            bw: 0.1 + 0.2,
            cmr: f64::NAN,
            l1mr: f64::INFINITY,
            l2mr: f64::NEG_INFINITY,
            ipc: 2.5,
        },
        TraceEvent::TlpDecision {
            cycle: 2,
            app: 1,
            old: 24,
            new: 2,
            reason: "latency-tolerance",
        },
        TraceEvent::SearchPhase {
            cycle: 3,
            scheme: "PBS-WS".into(),
            phase: "boot".into(),
        },
        TraceEvent::PartitionWindow {
            cycle: 4,
            partition: 1,
            per_app_bw: vec![2.0 / 3.0, f64::NAN],
            rowbuf_hit_rate: f64::INFINITY,
            queue_depth: 9,
        },
        TraceEvent::CoreWindow {
            cycle: 5,
            core: 0,
            app: 1,
            ipc: f64::NAN,
            active_warps: 1.0 / 7.0,
            stall: StallBreakdown {
                mem: f64::INFINITY,
                structural: 0.125,
                idle: 1.0 / 3.0,
            },
        },
        TraceEvent::CacheStats {
            cycle: 0,
            hits: 5,
            disk_hits: 2,
            misses: 1,
            bypasses: 0,
            stores: 1,
            verified: 0,
            inflight_joined: 3,
        },
        TraceEvent::CacheTier {
            cycle: 0,
            tier: "memory".into(),
            hits: 3,
            misses: 3,
            stores: 3,
        },
        TraceEvent::SchedUnit {
            cycle: 0,
            unit: 4,
            label: "sweep:BLK_BFS".into(),
            fp: "0123456789abcdef0123456789abcdef".into(),
            deps: 2,
            est: 450_000,
            worker: 1,
            start_ms: f64::NAN,
            wall_ms: f64::INFINITY,
            cycles: 7,
        },
        TraceEvent::DomainWindow {
            cycle: 9,
            domain: 1,
            windows: 12,
            window_cycles: 6_000,
            core_steps: 24,
            partition_steps: 12,
        },
        TraceEvent::MetricsWindow {
            cycle: 6,
            app: None,
            stalls: WarpStalls {
                mem: 100,
                exec: 20,
                barrier: 0,
                tlp_capped: 4,
            },
            dram_lat: h,
            mshr_occ: Histogram::new(),
            queue_depth: Histogram::new(),
            machine_fast_forward_fraction: Some(0.5),
            component_idle_skip_fraction: None,
        },
        TraceEvent::ProfileSpan {
            cycle: 0,
            level: "sweep".into(),
            name: "BLK_BFS".into(),
            depth: 2,
            wall_s: f64::NAN,
            cycles: 123,
            cache_hits: 4,
            cache_misses: 5,
            workers: 8,
        },
    ]
}

#[test]
fn every_event_kind_round_trips_through_the_validator() {
    let events = one_of_each_kind();
    // Exhaustiveness: one fixture per kind the emitter can produce.
    let mut kinds: Vec<&str> = events.iter().map(TraceEvent::kind).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(kinds.len(), events.len(), "duplicate kind in fixture list");
    assert_eq!(kinds.len(), 11, "new event kind? extend one_of_each_kind()");
    for e in &events {
        let line = e.to_json();
        assert_eq!(validate_line(&line), Ok(e.kind()), "{line}");
    }
}

#[test]
fn six_decimal_floats_survive_the_parse() {
    // The emitter writes floats as `{v:.6}`; parsing the serialized record
    // must yield exactly the six-decimal rounding of the original value.
    let cases = [1.0 / 3.0, 0.1 + 0.2, 2.5, 1e-7, 123456.789_012_34];
    for &v in &cases {
        let e = TraceEvent::WindowSample {
            cycle: 0,
            app: 0,
            eb: v,
            bw: 0.0,
            cmr: 0.0,
            l1mr: 0.0,
            l2mr: 0.0,
            ipc: 0.0,
        };
        let parsed = parse(&e.to_json()).expect("emitter output parses");
        let got = parsed.get("eb").and_then(Json::as_num).expect("eb number");
        let want: f64 = format!("{v:.6}").parse().unwrap();
        assert_eq!(got.to_bits(), want.to_bits(), "value {v}");
    }
}

#[test]
fn non_finite_floats_round_trip_as_null_in_every_float_field() {
    for e in one_of_each_kind() {
        let line = e.to_json();
        let parsed = parse(&line).expect("emitter output parses");
        // The validator accepts the line even with nulls in float fields.
        validate_line(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
        match &e {
            TraceEvent::WindowSample { .. } => {
                assert_eq!(parsed.get("cmr"), Some(&Json::Null));
                assert_eq!(parsed.get("l1mr"), Some(&Json::Null));
                assert_eq!(parsed.get("l2mr"), Some(&Json::Null));
            }
            TraceEvent::PartitionWindow { .. } => {
                let bw = parsed.get("per_app_bw").and_then(Json::as_arr).unwrap();
                assert_eq!(bw[1], Json::Null);
                assert_eq!(parsed.get("rowbuf_hit_rate"), Some(&Json::Null));
            }
            TraceEvent::CoreWindow { .. } => {
                assert_eq!(parsed.get("ipc"), Some(&Json::Null));
                let stall = parsed.get("stall").unwrap();
                assert_eq!(stall.get("mem"), Some(&Json::Null));
            }
            TraceEvent::ProfileSpan { .. } => {
                assert_eq!(parsed.get("wall_s"), Some(&Json::Null));
            }
            TraceEvent::SchedUnit { .. } => {
                assert_eq!(parsed.get("start_ms"), Some(&Json::Null));
                assert_eq!(parsed.get("wall_ms"), Some(&Json::Null));
            }
            _ => {}
        }
    }
}

#[test]
fn real_traced_run_validates_end_to_end() {
    let path =
        std::env::temp_dir().join(format!("ebm_trace_roundtrip_{}.jsonl", std::process::id()));
    {
        let mut sink = JsonlSink::create(&path).expect("temp trace file");
        let cfg = GpuConfig::small();
        let w = Workload::pair("BLK", "BFS");
        let mut pbs =
            Pbs::new(EbObjective::Ws, cfg.max_tlp(), PbsScaling::None).with_hold_windows(8);
        let mut gpu = Gpu::new(&cfg, w.apps(), 42);
        gpu.set_combo(&TlpCombo::uniform(cfg.max_tlp(), 2));
        let _ = run_controlled_traced(
            &mut gpu,
            &mut pbs as &mut dyn Controller,
            30_000,
            500,
            &mut sink,
        );
        // Append what a campaign appends: profiler spans and cache stats.
        {
            let _span = ebm_bench::profiler::span("run", "roundtrip-test");
        }
        let spans = ebm_bench::profiler::take_spans();
        assert!(!spans.is_empty());
        ebm_bench::profiler::emit_spans(&mut sink, &spans);
        gpu_sim::cache::emit_stats(&mut sink);
        sink.flush();
    }
    let text = std::fs::read_to_string(&path).expect("trace readable");
    let _ = std::fs::remove_file(&path);
    let report = validate_trace(&text);
    assert!(
        report.is_ok(),
        "schema violations: {:?}",
        &report.errors[..report.errors.len().min(5)]
    );
    let kind = |k: &str| {
        report
            .by_kind
            .iter()
            .find(|(name, _)| *name == k)
            .map_or(0, |(_, n)| *n)
    };
    assert!(kind("window_sample") > 0);
    assert!(kind("metrics_window") > 0);
    assert!(kind("profile_span") > 0);
    assert_eq!(kind("cache_stats"), 1);
    // emit_stats also breaks the totals into per-tier funnel events.
    assert_eq!(kind("cache_tier"), 2);
}
