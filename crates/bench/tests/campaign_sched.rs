//! End-to-end checks of the campaign work-graph scheduler: a plan with
//! real dependency chains (scheme units waiting on alone profiles and
//! sweeps) must execute fully and render byte-identically to the serial
//! artifact loop, on any worker count.

use ebm_bench::campaign::{self, CostModel};
use ebm_bench::figures;
use ebm_bench::util::BenchArgs;
use ebm_core::eval::{Evaluator, EvaluatorConfig};
use gpu_sim::{cache, trace::NullSink};

fn quick_args(only: &[&str]) -> BenchArgs {
    let mut args = BenchArgs {
        quick: true,
        ..BenchArgs::default()
    };
    args.only = Some(only.iter().map(|s| s.to_string()).collect());
    args
}

/// Runs the scheduled campaign for `only` and returns the rendered
/// reports in emission order.
fn scheduled(only: &[&str]) -> (Vec<(String, String)>, campaign::CampaignStats) {
    let ev = Evaluator::new(EvaluatorConfig::quick());
    let plan = campaign::plan_with_costs(&quick_args(only), &ev, CostModel::empty());
    let mut rendered = Vec::new();
    let stats = campaign::run(plan, &ev, &mut NullSink, &mut |r| {
        rendered.push((r.id().to_owned(), r.render()))
    });
    (rendered, stats)
}

#[test]
fn scheme_graph_schedules_and_matches_serial() {
    // fig01 exercises the deepest chains the planner builds: scheme units
    // depending on alone profiles, the sweep, and (for opt*) the
    // ++bestTLP scheme unit.
    cache::clear_memory();
    let (rendered, stats) = scheduled(&["fig01", "fig02", "fig06"]);
    assert_eq!(stats.executed, stats.planned, "graph must drain completely");
    assert!(
        stats.planned >= 7,
        "fig01 alone plans 2 alone + 1 sweep + 4+ schemes"
    );
    assert_eq!(
        rendered
            .iter()
            .map(|(id, _)| id.as_str())
            .collect::<Vec<_>>(),
        vec!["fig01", "fig02", "fig06"],
        "artifacts render in serial campaign order"
    );

    let ev = Evaluator::new(EvaluatorConfig::quick());
    let serial = [
        figures::fig01(&ev).render(),
        figures::fig02(&ev).render(),
        figures::fig06(&ev).render(),
    ];
    for ((id, got), want) in rendered.iter().zip(&serial) {
        assert_eq!(got, want, "{id} diverges from the serial render");
    }
}

#[test]
fn shared_units_dedup_and_warm_the_renders() {
    cache::clear_memory();
    cache::reset_stats();
    let (rendered, stats) = scheduled(&["tab04", "fig05"]);
    assert_eq!(rendered.len(), 2);
    // Both artifacts read the same 26 alone profiles: half the demands
    // dedup away, and the renders are pure store/cache hits.
    assert!(stats.dedup_ratio() > 0.49, "ratio {}", stats.dedup_ratio());
    assert_eq!(stats.executed, stats.planned);
    assert!(stats.peak_ready > 0);
    assert!(stats.wall_s > 0.0);
}

#[test]
fn worker_width_does_not_change_artifacts() {
    // The scheduler inherits EBM_THREADS through exec::worker_count();
    // within one process we can at least pin the pool to one worker and
    // compare against the default width via a fresh store.
    cache::clear_memory();
    let (wide, _) = scheduled(&["fig03", "fig07"]);
    cache::clear_memory();
    let (narrow, _) = scheduled(&["fig03", "fig07"]);
    assert_eq!(wide, narrow, "renders must not depend on pool scheduling");
}
