//! Integration tests for the observability layer added with the telemetry
//! bus: counter gating, profiler spans under worker pools, and the
//! `sched_unit` → [`CostModel`] calibration round-trip.
//!
//! Counter enablement and the profiler span store are process-global, so
//! each global surface is exercised by exactly one test function here —
//! the test harness runs functions concurrently within this binary.

use ebm_bench::campaign::CostModel;
use ebm_bench::profiler;
use gpu_sim::counters;
use gpu_sim::exec::with_workers;
use gpu_sim::trace::{RingSink, TraceEvent, TraceSink};

/// Disabled counters must ignore every mutation (the disabled path is the
/// zero-cost default for library users of the simulator); re-enabling
/// restores recording, and `snapshot` lists the registered name.
#[test]
fn counters_gate_recording_when_disabled() {
    let c = counters::counter("test.observability.gate");
    counters::set_enabled(false);
    assert!(!counters::enabled());
    c.add(5);
    c.incr();
    c.set(99);
    assert_eq!(c.get(), 0, "mutations while disabled must be dropped");
    counters::set_enabled(true);
    assert!(counters::enabled());
    c.add(5);
    c.incr();
    assert_eq!(c.get(), 6);
    c.set(42);
    assert_eq!(c.get(), 42);
    assert!(counters::snapshot()
        .iter()
        .any(|(name, v)| *name == "test.observability.gate" && *v == 42));
    c.reset();
    assert_eq!(c.get(), 0, "reset is ungated");
}

/// Spans opened on pool worker threads must not nest under the span open
/// on the coordinating thread (depth is tracked per creating thread), at
/// every pool width the campaign scheduler actually uses.
#[test]
fn profiler_spans_are_per_thread_under_worker_pools() {
    for workers in [1usize, 2, 4] {
        let _ = profiler::take_spans(); // isolate this width's spans
        {
            let _outer = profiler::span("campaign", "obs-test");
            with_workers(
                workers,
                |w| {
                    let _span = profiler::span("run", &format!("worker-{w}"));
                },
                || {},
            );
        }
        let spans = profiler::take_spans();
        assert_eq!(
            spans.len(),
            workers + 1,
            "one span per worker plus the outer one at width {workers}"
        );
        // Spans are recorded in start order; the outer span started first.
        assert_eq!(spans[0].level, "campaign");
        assert_eq!(spans[0].depth, 0);
        for s in &spans[1..] {
            assert_eq!(s.level, "run");
            assert_eq!(
                s.depth, 0,
                "worker-thread span must not nest under the coordinator span"
            );
            assert!(s.wall_s >= 0.0);
        }
        let mut names: Vec<&str> = spans[1..].iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let want: Vec<String> = (0..workers).map(|w| format!("worker-{w}")).collect();
        assert_eq!(names, want.iter().map(String::as_str).collect::<Vec<_>>());
    }
}

/// The calibration loop the report documents: `sched_unit` events captured
/// from a traced campaign feed `CostModel::observe`, which the next plan
/// consults — and cache-served units (zero cycles) teach the model
/// nothing, so the static fallback survives for them.
#[test]
fn sched_unit_events_round_trip_into_the_cost_model() {
    let mut sink = RingSink::new(16);
    let unit = |unit: u64, label: &str, est: u64, cycles: u64| TraceEvent::SchedUnit {
        cycle: 0,
        unit,
        label: label.into(),
        fp: format!("{:032x}", unit),
        deps: 0,
        est,
        worker: 0,
        start_ms: 0.0,
        wall_ms: 0.0,
        cycles,
    };
    sink.emit(unit(0, "sweep:BLK_BFS", 450_000, 777_123));
    sink.emit(unit(1, "alone:BFS@8", 100_000, 0)); // cache-served
    let mut model = CostModel::empty();
    for e in sink.events() {
        if let TraceEvent::SchedUnit { label, cycles, .. } = e {
            model.observe(label, *cycles);
        }
    }
    assert_eq!(
        model.cost("sweep:BLK_BFS", 450_000),
        777_123,
        "observed cycles replace the static estimate"
    );
    assert_eq!(
        model.cost("alone:BFS@8", 100_000),
        100_000,
        "zero-cycle observations are ignored"
    );
    assert_eq!(model.cost("never-seen", 7), 7);
}
