//! Criterion benchmarks of the TLP-management policies themselves: the
//! per-window decision cost of PBS and the baselines, and the offline
//! searches over a 64-combination table. These correspond to the §V-E
//! computation-overhead claim — the PBS module does a trivial amount of
//! work per sampling window.

use criterion::{criterion_group, criterion_main, Criterion};
use ebm_core::metrics::EbObjective;
use ebm_core::pattern::pbs_offline_search;
use ebm_core::policy::pbs::PbsScaling;
use ebm_core::scaling::ScalingFactors;
use ebm_core::search::best_combo_by_eb;
use ebm_core::sweep::ComboSweep;
use ebm_core::{DynCta, ModBypass, Pbs};
use gpu_sim::control::{AppObservation, Controller, Observation};
use gpu_sim::harness::RunSpec;
use gpu_simt::CoreStats;
use gpu_types::{AppWindow, GpuConfig, MemCounters, TlpLevel};
use gpu_workloads::Workload;
use std::hint::black_box;

fn observation(n: usize) -> Observation {
    let c = MemCounters {
        l1_accesses: 1_000,
        l1_misses: 400,
        l2_accesses: 400,
        l2_misses: 200,
        dram_bytes: 200 * 128,
        warp_insts: 4_000,
        ..MemCounters::new()
    };
    Observation {
        now: 2_000,
        window_cycles: 2_000,
        apps: (0..n)
            .map(|_| AppObservation {
                window: AppWindow::new(c, 2_000, 192.0),
                core: CoreStats {
                    cycles: 2_000,
                    insts: 3_000,
                    warp_mem_wait_cycles: 10_000,
                    active_warp_cycles: 32_000,
                    ..CoreStats::default()
                },
                tlp: TlpLevel::new(8).unwrap(),
                bypassed: false,
            })
            .collect(),
    }
}

fn bench_controllers(c: &mut Criterion) {
    let obs = observation(2);
    c.bench_function("pbs_ws_window_decision", |b| {
        let mut pbs = Pbs::new(EbObjective::Ws, TlpLevel::MAX, PbsScaling::None);
        b.iter(|| black_box(pbs.on_window(&obs)))
    });
    c.bench_function("dyncta_window_decision", |b| {
        let mut d = DynCta::new(TlpLevel::MAX);
        b.iter(|| black_box(d.on_window(&obs)))
    });
    c.bench_function("modbypass_window_decision", |b| {
        let mut m = ModBypass::new(TlpLevel::MAX);
        b.iter(|| black_box(m.on_window(&obs)))
    });
}

fn bench_searches(c: &mut Criterion) {
    // One real (small-machine) sweep shared by both searches.
    let sweep = ComboSweep::measure(
        &GpuConfig::small(),
        &Workload::pair("BLK", "BFS"),
        3,
        RunSpec::new(300, 1_500),
    );
    let scaling = ScalingFactors::none(2);
    c.bench_function("pbs_offline_search_table", |b| {
        b.iter(|| black_box(pbs_offline_search(&sweep, EbObjective::Ws, &scaling)))
    });
    c.bench_function("brute_force_search_table", |b| {
        b.iter(|| black_box(best_combo_by_eb(&sweep, EbObjective::Ws, &scaling)))
    });
}

criterion_group!(benches, bench_controllers, bench_searches);
criterion_main!(benches);
