//! Criterion microbenchmarks of the simulator substrate.
//!
//! These guard the performance of the components the evaluation campaign
//! leans on (the full figure regeneration lives in the `ebm-bench`
//! binaries — `cargo run -p ebm-bench --release --bin experiments`).

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_mem::cache::Cache;
use gpu_mem::dram::DramChannel;
use gpu_mem::req::{AccessKind, MemRequest, ReqId};
use gpu_mem::xbar::Crossbar;
use gpu_mem::MemoryController;
use gpu_sim::harness::{measure_fixed, RunSpec};
use gpu_sim::machine::Gpu;
use gpu_types::{Address, AppId, CoreId, GpuConfig, SplitMix64, TlpCombo, TlpLevel};
use gpu_workloads::Workload;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let cfg = GpuConfig::paper().l1;
    c.bench_function("cache_hit_lookup", |b| {
        let mut cache = Cache::new(&cfg);
        cache.access_load(AppId::new(0), Address::new(0), ReqId(0));
        cache.fill(Address::new(0));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.access_load(AppId::new(0), Address::new(0), ReqId(i)))
        })
    });
    c.bench_function("cache_miss_fill_cycle", |b| {
        let mut cache = Cache::new(&cfg);
        let mut rng = SplitMix64::new(7);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let line = Address::new(rng.next_below(1 << 20) * 128);
            if cache.access_load(AppId::new(0), line, ReqId(i))
                == gpu_mem::cache::Lookup::MissToLower
            {
                black_box(cache.fill(line));
            }
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    let cfg = GpuConfig::paper().dram;
    c.bench_function("dram_service_stream", |b| {
        let mut ch = DramChannel::new(cfg.clone(), 6);
        let mut addr = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            addr += 256 * 6; // stay in this channel
            now += 4;
            black_box(ch.service(Address::new(addr), now))
        })
    });
    c.bench_function("mc_frfcfs_step_loaded", |b| {
        let mut mc = MemoryController::new(64);
        let mut ch = DramChannel::new(cfg.clone(), 6);
        let mut rng = SplitMix64::new(3);
        let mut now = 0u64;
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            now += 1;
            let req = MemRequest::new(
                ReqId(i),
                AppId::new(0),
                CoreId(0),
                0,
                Address::new(rng.next_below(1 << 18) * 256),
                AccessKind::Load,
            );
            let _ = mc.push_with(req, &ch);
            black_box(mc.step(now, &mut ch))
        })
    });
}

fn bench_xbar(c: &mut Criterion) {
    c.bench_function("crossbar_step_16x6", |b| {
        let mut x: Crossbar<u64> = Crossbar::new(16, 6, 8, 1, 8);
        let mut now = 0u64;
        let mut i = 0u64;
        b.iter(|| {
            now += 1;
            for input in 0..16 {
                i += 1;
                let _ = x.push(input, (i % 6) as usize, i, now);
            }
            black_box(x.step(now))
        })
    });
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_step");
    g.sample_size(10);
    for tlp in [2u32, 8] {
        g.bench_function(format!("paper_blk_bfs_tlp{tlp}"), |b| {
            let cfg = GpuConfig::paper();
            let w = Workload::pair("BLK", "BFS");
            let mut gpu = Gpu::new(&cfg, w.apps(), 1);
            gpu.set_combo(&TlpCombo::uniform(TlpLevel::new(tlp).unwrap(), 2));
            gpu.run(2_000); // warm
            b.iter(|| {
                gpu.run(100);
                black_box(gpu.now())
            })
        });
    }
    g.finish();
}

fn bench_measure(c: &mut Criterion) {
    let mut g = c.benchmark_group("measure_fixed");
    g.sample_size(10);
    g.bench_function("small_machine_4k_cycles", |b| {
        let cfg = GpuConfig::small();
        let w = Workload::pair("BLK", "BFS");
        b.iter(|| {
            let mut gpu = Gpu::new(&cfg, w.apps(), 1);
            let combo = TlpCombo::uniform(TlpLevel::new(4).unwrap(), 2);
            black_box(measure_fixed(&mut gpu, &combo, RunSpec::new(500, 3_500)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_dram, bench_xbar, bench_machine, bench_measure);
criterion_main!(benches);
