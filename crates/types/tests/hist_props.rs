//! Property-based tests for the log-bucketed [`Histogram`].
//!
//! Cases are generated with the in-repo [`SplitMix64`] generator (fixed
//! seeds, so failures reproduce exactly) — the build must work fully
//! offline, so no external property-testing crate is used.

use gpu_types::{Histogram, SplitMix64, HIST_BUCKETS};

const CASES: usize = 128;

/// Draws a sample spread over many orders of magnitude (uniform draws
/// alone would almost never hit the small buckets).
fn arb_sample(rng: &mut SplitMix64) -> u64 {
    let bits = rng.next_below(40) as u32;
    rng.next_u64() >> (63 - bits.min(63))
}

/// Bucket bounds are monotone, contiguous, and cover all of `u64`.
#[test]
fn bucket_bounds_monotone_and_contiguous() {
    let (lo0, hi0) = Histogram::bucket_bounds(0);
    assert_eq!((lo0, hi0), (0, 0));
    for i in 1..HIST_BUCKETS {
        let (_, prev_hi) = Histogram::bucket_bounds(i - 1);
        let (lo, hi) = Histogram::bucket_bounds(i);
        assert_eq!(lo, prev_hi + 1, "bucket {i} not contiguous");
        assert!(lo <= hi, "bucket {i} bounds inverted");
    }
    let (_, last_hi) = Histogram::bucket_bounds(HIST_BUCKETS - 1);
    assert_eq!(last_hi, u64::MAX);
}

/// Every value lands in the bucket whose bounds contain it.
#[test]
fn bucket_of_respects_bounds() {
    let mut rng = SplitMix64::new(0x4157_0001);
    for _ in 0..CASES * 8 {
        let v = arb_sample(&mut rng);
        let i = Histogram::bucket_of(v);
        let (lo, hi) = Histogram::bucket_bounds(i);
        assert!(lo <= v && v <= hi, "v={v} misfiled into bucket {i}");
    }
}

/// Count conservation: the bucket counts always sum to the total count,
/// through records, merges, and takes.
#[test]
fn count_conservation() {
    let mut rng = SplitMix64::new(0x4157_0002);
    for _ in 0..CASES {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let n = rng.next_below(200) as usize;
        for _ in 0..n {
            let v = arb_sample(&mut rng);
            if rng.next_below(2) == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let (ca, cb) = (a.count(), b.count());
        assert_eq!(ca + cb, n as u64);
        assert_eq!(a.buckets().iter().sum::<u64>(), ca);
        a.merge(&b);
        assert_eq!(a.count(), n as u64);
        assert_eq!(a.buckets().iter().sum::<u64>(), n as u64);
        let snap = a.take();
        assert_eq!(snap.count(), n as u64);
        assert_eq!(a.count(), 0);
        assert_eq!(a.buckets().iter().sum::<u64>(), 0);
    }
}

/// Percentile estimates stay inside the recorded `[min, max]` range and
/// are monotone in `p`.
#[test]
fn percentiles_within_min_max() {
    let mut rng = SplitMix64::new(0x4157_0003);
    for _ in 0..CASES {
        let mut h = Histogram::new();
        let n = 1 + rng.next_below(500) as usize;
        for _ in 0..n {
            h.record(arb_sample(&mut rng));
        }
        let mut prev = h.min();
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let q = h.percentile(p);
            assert!(
                h.min() <= q && q <= h.max(),
                "p{p}: {q} outside [{}, {}]",
                h.min(),
                h.max()
            );
            assert!(q >= prev, "percentile not monotone at p={p}");
            prev = q;
        }
    }
}

/// Mean is exact: `sum / count` for any mix of samples.
#[test]
fn mean_is_exact() {
    let mut rng = SplitMix64::new(0x4157_0004);
    for _ in 0..CASES {
        let mut h = Histogram::new();
        let mut total: u128 = 0;
        let n = 1 + rng.next_below(100) as usize;
        for _ in 0..n {
            let v = rng.next_below(1 << 30);
            total += v as u128;
            h.record(v);
        }
        let expect = total as f64 / n as f64;
        assert!((h.mean() - expect).abs() < 1e-9 * expect.max(1.0));
    }
}

/// `from_parts` accepts exactly what `record` produced (with trailing
/// zeros trimmed, the on-wire form).
#[test]
fn from_parts_round_trips_random_histograms() {
    let mut rng = SplitMix64::new(0x4157_0005);
    for _ in 0..CASES {
        let mut h = Histogram::new();
        for _ in 0..rng.next_below(50) {
            h.record(arb_sample(&mut rng));
        }
        let trimmed_len = h
            .buckets()
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        let back = Histogram::from_parts(
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            &h.buckets()[..trimmed_len],
        )
        .expect("round trip");
        assert_eq!(back, h);
    }
}
