//! Property-based tests of the foundation types.

use gpu_types::tlp::LADDER;
use gpu_types::{Address, AppWindow, MemCounters, SplitMix64, TlpCombo, TlpLevel};
use proptest::prelude::*;

fn arb_counters() -> impl Strategy<Value = MemCounters> {
    (
        0u64..100_000,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0u64..1_000,
        0u64..10_000,
    )
        .prop_map(|(l1a, l1mr, l2mr, lines, insts)| {
            let l1m = (l1a as f64 * l1mr) as u64;
            let l2a = l1m;
            let l2m = (l2a as f64 * l2mr) as u64;
            MemCounters {
                l1_accesses: l1a,
                l1_misses: l1m,
                l2_accesses: l2a,
                l2_misses: l2m,
                dram_bytes: lines * gpu_types::LINE_SIZE,
                row_hits: lines / 2,
                row_misses: lines - lines / 2,
                warp_insts: insts,
            }
        })
}

proptest! {
    /// Miss rates are always rates; CMR never exceeds either component.
    #[test]
    fn miss_rates_are_well_formed(c in arb_counters()) {
        prop_assert!((0.0..=1.0).contains(&c.l1_miss_rate()));
        prop_assert!((0.0..=1.0).contains(&c.l2_miss_rate()));
        let cmr = c.combined_miss_rate();
        prop_assert!(cmr <= c.l1_miss_rate() + 1e-12);
        prop_assert!(cmr <= c.l2_miss_rate() + 1e-12);
    }

    /// EB amplifies BW exactly when caches help: EB >= BW always (CMR <= 1),
    /// with equality at CMR = 1.
    #[test]
    fn eb_amplifies_bw(c in arb_counters(), cycles in 1u64..100_000) {
        let w = AppWindow::new(c, cycles, 192.0);
        prop_assert!(w.effective_bandwidth() >= w.attained_bw() - 1e-12);
        prop_assert!(w.effective_bandwidth().is_finite());
        if c.l1_accesses > 0 && c.combined_miss_rate() == 1.0 {
            prop_assert!((w.effective_bandwidth() - w.attained_bw()).abs() < 1e-12);
        }
    }

    /// Counter deltas invert addition.
    #[test]
    fn counters_add_sub_roundtrip(a in arb_counters(), b in arb_counters()) {
        let sum = a + b;
        prop_assert_eq!(sum - b, a);
        prop_assert_eq!(sum - a, b);
    }

    /// Every ladder combination stays on the ladder and enumerations are
    /// complete and duplicate-free.
    #[test]
    fn combos_enumerate_the_ladder(n in 1usize..4) {
        let combos = TlpCombo::all(n);
        prop_assert_eq!(combos.len(), LADDER.len().pow(n as u32));
        let set: std::collections::HashSet<_> = combos.iter().cloned().collect();
        prop_assert_eq!(set.len(), combos.len());
        for c in &combos {
            for l in c.levels() {
                prop_assert!(l.ladder_index().is_some());
            }
        }
    }

    /// Ladder stepping is a strict inverse pair in the interior.
    #[test]
    fn ladder_steps_invert(i in 0usize..8) {
        let l = TlpLevel::new(LADDER[i]).unwrap();
        if let Some(up) = l.step_up() {
            prop_assert_eq!(up.step_down(), Some(l));
        }
        if let Some(down) = l.step_down() {
            prop_assert_eq!(down.step_up(), Some(l));
        }
    }

    /// Partition interleaving covers all partitions with bounded skew over
    /// aligned ranges.
    #[test]
    fn interleaving_is_balanced(n_partitions in 1usize..9, start_chunk in 0u64..1_000) {
        let mut counts = vec![0u64; n_partitions];
        let total = 64 * n_partitions as u64;
        for i in 0..total {
            let addr = Address::new((start_chunk + i) * 256);
            counts[addr.partition(n_partitions)] += 1;
        }
        for &c in &counts {
            prop_assert_eq!(c, 64);
        }
    }

    /// SplitMix64 streams from distinct seeds look uncorrelated at the level
    /// this simulator relies on (no collisions over short prefixes).
    #[test]
    fn rng_streams_do_not_collide(s1 in 0u64..10_000, s2 in 0u64..10_000) {
        prop_assume!(s1 != s2);
        let mut a = SplitMix64::new(s1);
        let mut b = SplitMix64::new(s2);
        let matches = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        prop_assert_eq!(matches, 0);
    }
}
