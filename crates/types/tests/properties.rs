//! Property-based tests of the foundation types.
//!
//! Cases are generated with the in-repo [`SplitMix64`] generator (fixed
//! seeds, so failures reproduce exactly) instead of an external
//! property-testing crate — the build must work fully offline.

use gpu_types::tlp::LADDER;
use gpu_types::{Address, AppWindow, MemCounters, SplitMix64, TlpCombo, TlpLevel};

const CASES: usize = 256;

fn arb_counters(rng: &mut SplitMix64) -> MemCounters {
    let l1a = rng.next_below(100_000);
    let l1mr = rng.next_f64();
    let l2mr = rng.next_f64();
    let lines = rng.next_below(1_000);
    let insts = rng.next_below(10_000);
    let l1m = (l1a as f64 * l1mr) as u64;
    let l2a = l1m;
    let l2m = (l2a as f64 * l2mr) as u64;
    MemCounters {
        l1_accesses: l1a,
        l1_misses: l1m,
        l2_accesses: l2a,
        l2_misses: l2m,
        dram_bytes: lines * gpu_types::LINE_SIZE,
        row_hits: lines / 2,
        row_misses: lines - lines / 2,
        warp_insts: insts,
    }
}

/// Miss rates are always rates; CMR never exceeds either component.
#[test]
fn miss_rates_are_well_formed() {
    let mut rng = SplitMix64::new(0xA11C_E501);
    for _ in 0..CASES {
        let c = arb_counters(&mut rng);
        assert!((0.0..=1.0).contains(&c.l1_miss_rate()));
        assert!((0.0..=1.0).contains(&c.l2_miss_rate()));
        let cmr = c.combined_miss_rate();
        assert!(cmr <= c.l1_miss_rate() + 1e-12);
        assert!(cmr <= c.l2_miss_rate() + 1e-12);
    }
}

/// EB amplifies BW exactly when caches help: EB >= BW always (CMR <= 1),
/// with equality at CMR = 1.
#[test]
fn eb_amplifies_bw() {
    let mut rng = SplitMix64::new(0xA11C_E502);
    for _ in 0..CASES {
        let c = arb_counters(&mut rng);
        let cycles = 1 + rng.next_below(100_000 - 1);
        let w = AppWindow::new(c, cycles, 192.0);
        assert!(w.effective_bandwidth() >= w.attained_bw() - 1e-12);
        assert!(w.effective_bandwidth().is_finite());
        if c.l1_accesses > 0 && c.combined_miss_rate() == 1.0 {
            assert!((w.effective_bandwidth() - w.attained_bw()).abs() < 1e-12);
        }
    }
}

/// Counter deltas invert addition.
#[test]
fn counters_add_sub_roundtrip() {
    let mut rng = SplitMix64::new(0xA11C_E503);
    for _ in 0..CASES {
        let a = arb_counters(&mut rng);
        let b = arb_counters(&mut rng);
        let sum = a + b;
        assert_eq!(sum - b, a);
        assert_eq!(sum - a, b);
    }
}

/// Every ladder combination stays on the ladder and enumerations are
/// complete and duplicate-free.
#[test]
fn combos_enumerate_the_ladder() {
    for n in 1usize..4 {
        let combos = TlpCombo::all(n);
        assert_eq!(combos.len(), LADDER.len().pow(n as u32));
        let set: std::collections::HashSet<_> = combos.iter().cloned().collect();
        assert_eq!(set.len(), combos.len());
        for c in &combos {
            for l in c.levels() {
                assert!(l.ladder_index().is_some());
            }
        }
    }
}

/// Ladder stepping is a strict inverse pair in the interior.
#[test]
fn ladder_steps_invert() {
    for step in LADDER {
        let l = TlpLevel::new(step).unwrap();
        if let Some(up) = l.step_up() {
            assert_eq!(up.step_down(), Some(l));
        }
        if let Some(down) = l.step_down() {
            assert_eq!(down.step_up(), Some(l));
        }
    }
}

/// Partition interleaving covers all partitions with bounded skew over
/// aligned ranges.
#[test]
fn interleaving_is_balanced() {
    let mut rng = SplitMix64::new(0xA11C_E504);
    for _ in 0..CASES {
        let n_partitions = 1 + rng.next_below(8) as usize;
        let start_chunk = rng.next_below(1_000);
        let mut counts = vec![0u64; n_partitions];
        let total = 64 * n_partitions as u64;
        for i in 0..total {
            let addr = Address::new((start_chunk + i) * 256);
            counts[addr.partition(n_partitions)] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 64);
        }
    }
}

/// SplitMix64 streams from distinct seeds look uncorrelated at the level
/// this simulator relies on (no collisions over short prefixes).
#[test]
fn rng_streams_do_not_collide() {
    let mut rng = SplitMix64::new(0xA11C_E505);
    for _ in 0..CASES {
        let s1 = rng.next_below(10_000);
        let s2 = rng.next_below(10_000);
        if s1 == s2 {
            continue;
        }
        let mut a = SplitMix64::new(s1);
        let mut b = SplitMix64::new(s2);
        let matches = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }
}
