//! Raw hardware statistics counters and per-window derived rates.
//!
//! The paper's runtime mechanism samples, per application and per monitoring
//! window: L1 miss rate (from one designated core), L2 miss rate and attained
//! DRAM bandwidth (from one designated memory partition). [`MemCounters`]
//! holds the raw counts; [`AppWindow`] pairs a counter delta with the window
//! length and exposes the derived quantities of Table III — miss rates, the
//! combined miss rate CMR, attained bandwidth BW and effective bandwidth
//! EB = BW / CMR.

use std::ops::{Add, AddAssign, Sub};

/// Raw event counts attributed to one application.
///
/// All counts are cumulative; window deltas are formed with `-`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// L1 data cache accesses.
    pub l1_accesses: u64,
    /// L1 data cache misses.
    pub l1_misses: u64,
    /// L2 accesses (L1 misses that reached an L2 slice).
    pub l2_accesses: u64,
    /// L2 misses (requests sent to DRAM).
    pub l2_misses: u64,
    /// Useful data bytes transferred over the DRAM interface.
    pub dram_bytes: u64,
    /// DRAM column accesses that hit an open row (diagnostic).
    pub row_hits: u64,
    /// DRAM column accesses that required an ACTIVATE (diagnostic).
    pub row_misses: u64,
    /// Warp instructions issued.
    pub warp_insts: u64,
}

impl MemCounters {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// L1 miss rate in `[0, 1]`; defined as 1 when there were no accesses
    /// (caches provide no amplification for an idle application, making
    /// EB degenerate to BW as §III-B requires).
    pub fn l1_miss_rate(&self) -> f64 {
        rate_or_one(self.l1_misses, self.l1_accesses)
    }

    /// L2 miss rate in `[0, 1]`; 1 when there were no L2 accesses.
    pub fn l2_miss_rate(&self) -> f64 {
        rate_or_one(self.l2_misses, self.l2_accesses)
    }

    /// Combined miss rate `CMR = L1MR × L2MR` (Table III).
    pub fn combined_miss_rate(&self) -> f64 {
        self.l1_miss_rate() * self.l2_miss_rate()
    }

    /// DRAM row-buffer hit rate (diagnostic; drives attained bandwidth).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

fn rate_or_one(numer: u64, denom: u64) -> f64 {
    if denom == 0 {
        1.0
    } else {
        debug_assert!(numer <= denom, "misses {numer} exceed accesses {denom}");
        numer as f64 / denom as f64
    }
}

impl Add for MemCounters {
    type Output = MemCounters;

    fn add(self, rhs: MemCounters) -> MemCounters {
        MemCounters {
            l1_accesses: self.l1_accesses + rhs.l1_accesses,
            l1_misses: self.l1_misses + rhs.l1_misses,
            l2_accesses: self.l2_accesses + rhs.l2_accesses,
            l2_misses: self.l2_misses + rhs.l2_misses,
            dram_bytes: self.dram_bytes + rhs.dram_bytes,
            row_hits: self.row_hits + rhs.row_hits,
            row_misses: self.row_misses + rhs.row_misses,
            warp_insts: self.warp_insts + rhs.warp_insts,
        }
    }
}

impl AddAssign for MemCounters {
    fn add_assign(&mut self, rhs: MemCounters) {
        *self = *self + rhs;
    }
}

impl Sub for MemCounters {
    type Output = MemCounters;

    /// Window delta between two cumulative snapshots (`later - earlier`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is not an earlier snapshot of `self`.
    fn sub(self, rhs: MemCounters) -> MemCounters {
        debug_assert!(
            self.l1_accesses >= rhs.l1_accesses,
            "snapshot order reversed"
        );
        MemCounters {
            l1_accesses: self.l1_accesses - rhs.l1_accesses,
            l1_misses: self.l1_misses - rhs.l1_misses,
            l2_accesses: self.l2_accesses - rhs.l2_accesses,
            l2_misses: self.l2_misses - rhs.l2_misses,
            dram_bytes: self.dram_bytes - rhs.dram_bytes,
            row_hits: self.row_hits - rhs.row_hits,
            row_misses: self.row_misses - rhs.row_misses,
            warp_insts: self.warp_insts - rhs.warp_insts,
        }
    }
}

/// One application's observation window: a counter delta plus the window
/// length, yielding the per-window metrics of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppWindow {
    /// Event counts accumulated during the window.
    pub counters: MemCounters,
    /// Window length in core cycles.
    pub cycles: u64,
    /// Theoretical peak DRAM bandwidth of the whole GPU in bytes per cycle
    /// ([`crate::GpuConfig::peak_bw_bytes_per_cycle`]); BW is normalized to it.
    pub peak_bw_bytes_per_cycle: f64,
}

impl AppWindow {
    /// Creates a window observation.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero or the peak bandwidth is not positive.
    pub fn new(counters: MemCounters, cycles: u64, peak_bw_bytes_per_cycle: f64) -> Self {
        assert!(cycles > 0, "observation window must be non-empty");
        assert!(
            peak_bw_bytes_per_cycle > 0.0,
            "peak bandwidth must be positive"
        );
        AppWindow {
            counters,
            cycles,
            peak_bw_bytes_per_cycle,
        }
    }

    /// Warp-instruction IPC over the window.
    pub fn ipc(&self) -> f64 {
        self.counters.warp_insts as f64 / self.cycles as f64
    }

    /// Attained DRAM bandwidth normalized to the theoretical peak
    /// (Table III's BW), in `[0, 1]` up to rounding.
    pub fn attained_bw(&self) -> f64 {
        self.counters.dram_bytes as f64 / (self.cycles as f64 * self.peak_bw_bytes_per_cycle)
    }

    /// Combined miss rate `CMR` over the window.
    pub fn combined_miss_rate(&self) -> f64 {
        self.counters.combined_miss_rate()
    }

    /// Effective bandwidth `EB = BW / CMR` (§III-B): the rate of data
    /// delivery to the cores, i.e. attained DRAM bandwidth amplified by the
    /// cache hierarchy.
    ///
    /// When CMR is 0 (a perfectly cached window) the amplification is bounded
    /// by treating CMR as one miss in the observed accesses, avoiding an
    /// infinite EB while preserving "lower CMR ⇒ higher EB".
    pub fn effective_bandwidth(&self) -> f64 {
        let cmr = self.combined_miss_rate();
        let floor = 1.0 / (1 + self.counters.l1_accesses) as f64;
        self.attained_bw() / cmr.max(floor)
    }

    /// Effective bandwidth observed *by the L2* — BW amplified only by the L2
    /// miss rate (point "B" of Fig. 3).
    pub fn effective_bandwidth_at_l2(&self) -> f64 {
        let l2mr = self.counters.l2_miss_rate();
        let floor = 1.0 / (1 + self.counters.l2_accesses) as f64;
        self.attained_bw() / l2mr.max(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> MemCounters {
        MemCounters {
            l1_accesses: 1000,
            l1_misses: 400,
            l2_accesses: 400,
            l2_misses: 200,
            dram_bytes: 200 * 128,
            row_hits: 150,
            row_misses: 50,
            warp_insts: 5000,
        }
    }

    #[test]
    fn miss_rates() {
        let c = counters();
        assert!((c.l1_miss_rate() - 0.4).abs() < 1e-12);
        assert!((c.l2_miss_rate() - 0.5).abs() < 1e-12);
        assert!((c.combined_miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_have_unit_miss_rates() {
        let c = MemCounters::new();
        assert_eq!(c.l1_miss_rate(), 1.0);
        assert_eq!(c.l2_miss_rate(), 1.0);
        assert_eq!(c.combined_miss_rate(), 1.0);
        assert_eq!(c.row_hit_rate(), 0.0);
    }

    #[test]
    fn add_and_sub_round_trip() {
        let a = counters();
        let b = counters();
        let sum = a + b;
        assert_eq!(sum - b, a);
        assert_eq!(sum.l1_accesses, 2000);
    }

    #[test]
    fn window_bw_is_normalized() {
        // 200 lines * 128 B over 1000 cycles at peak 192 B/cycle.
        let w = AppWindow::new(counters(), 1000, 192.0);
        let expected = (200.0 * 128.0) / (1000.0 * 192.0);
        assert!((w.attained_bw() - expected).abs() < 1e-12);
    }

    #[test]
    fn eb_amplifies_bw_by_inverse_cmr() {
        let w = AppWindow::new(counters(), 1000, 192.0);
        // CMR = 0.2 => EB = BW * 5 (a miss rate of 50% "effectively doubles
        // the bandwidth delivered", per §II-B).
        assert!((w.effective_bandwidth() - w.attained_bw() / 0.2).abs() < 1e-12);
        assert!(w.effective_bandwidth() > w.effective_bandwidth_at_l2());
    }

    #[test]
    fn eb_equals_bw_for_cache_insensitive_app() {
        // CMR = 1 (all misses): caches do not help, EB == BW (§III-B, BLK).
        let c = MemCounters {
            l1_accesses: 100,
            l1_misses: 100,
            l2_accesses: 100,
            l2_misses: 100,
            dram_bytes: 100 * 128,
            ..MemCounters::new()
        };
        let w = AppWindow::new(c, 500, 192.0);
        assert!((w.effective_bandwidth() - w.attained_bw()).abs() < 1e-12);
    }

    #[test]
    fn eb_is_finite_at_zero_cmr() {
        let c = MemCounters {
            l1_accesses: 1000,
            warp_insts: 100,
            ..MemCounters::new()
        };
        let w = AppWindow::new(c, 500, 192.0);
        assert!(w.effective_bandwidth().is_finite());
    }

    #[test]
    fn ipc_counts_warp_instructions() {
        let w = AppWindow::new(counters(), 1000, 192.0);
        assert!((w.ipc() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_cycle_window_panics() {
        let _ = AppWindow::new(MemCounters::new(), 0, 192.0);
    }

    #[test]
    fn row_hit_rate_diagnostic() {
        assert!((counters().row_hit_rate() - 0.75).abs() < 1e-12);
    }
}
