//! Global addresses and the address-interleaving scheme.
//!
//! The simulated GPU uses a single global linear address space. Cache lines
//! are [`LINE_SIZE`] bytes; the space is interleaved among memory partitions
//! in [`INTERLEAVE_BYTES`]-byte chunks (Table I of the paper: "global linear
//! address space is interleaved among partitions in chunks of 256 bytes").

use std::fmt;
use std::ops::Add;

/// Cache line (memory transaction) size in bytes, per Table I ("128 B cache
/// block size").
pub const LINE_SIZE: u64 = 128;

/// Partition interleaving granularity in bytes (Table I).
pub const INTERLEAVE_BYTES: u64 = 256;

/// A byte address in the simulated global memory space.
///
/// ```
/// use gpu_types::{Address, LINE_SIZE};
/// let a = Address::new(0x1234);
/// assert_eq!(a.line().raw() % LINE_SIZE, 0);
/// assert!(a.line().raw() <= a.raw());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Wraps a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// The raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The address of the cache line containing this byte.
    pub const fn line(self) -> Self {
        Address(self.0 & !(LINE_SIZE - 1))
    }

    /// Line-granular index (raw address divided by the line size).
    pub const fn line_index(self) -> u64 {
        self.0 / LINE_SIZE
    }

    /// The memory partition this address maps to, under 256-byte chunk
    /// interleaving across `n_partitions` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `n_partitions` is zero.
    pub fn partition(self, n_partitions: usize) -> usize {
        assert!(n_partitions > 0, "partition count must be non-zero");
        ((self.0 / INTERLEAVE_BYTES) % n_partitions as u64) as usize
    }
}

impl Add<u64> for Address {
    type Output = Address;

    fn add(self, rhs: u64) -> Address {
        Address(self.0.wrapping_add(rhs))
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_masks_low_bits() {
        assert_eq!(Address::new(0).line(), Address::new(0));
        assert_eq!(Address::new(127).line(), Address::new(0));
        assert_eq!(Address::new(128).line(), Address::new(128));
        assert_eq!(Address::new(300).line(), Address::new(256));
    }

    #[test]
    fn line_index_is_line_granular() {
        assert_eq!(Address::new(0).line_index(), 0);
        assert_eq!(Address::new(129).line_index(), 1);
        assert_eq!(Address::new(1024).line_index(), 8);
    }

    #[test]
    fn interleaving_alternates_every_256_bytes() {
        let n = 6;
        let p0 = Address::new(0).partition(n);
        let p1 = Address::new(256).partition(n);
        let p2 = Address::new(512).partition(n);
        assert_eq!(p0, 0);
        assert_eq!(p1, 1);
        assert_eq!(p2, 2);
        // Both lines of one 256-byte chunk land in the same partition.
        assert_eq!(Address::new(0).partition(n), Address::new(128).partition(n));
    }

    #[test]
    fn interleaving_covers_all_partitions_uniformly() {
        let n = 6;
        let mut counts = vec![0usize; n];
        for chunk in 0..6000u64 {
            counts[Address::new(chunk * INTERLEAVE_BYTES).partition(n)] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 1000);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_partitions_panics() {
        let _ = Address::new(0).partition(0);
    }

    #[test]
    fn add_offsets_bytes() {
        assert_eq!((Address::new(100) + 28).raw(), 128);
    }
}
