//! A fast, non-cryptographic hasher for simulator-internal maps.
//!
//! The simulator performs several hash-map operations per simulated cycle
//! (MSHR lookups, in-flight request tracking); the standard library's
//! SipHash dominates the profile there. Keys are internal identifiers
//! (addresses, request ids) that need no DoS resistance, so we use the
//! well-known Fx multiply-rotate construction (as used by rustc).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (the rustc "Fx" construction).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 128, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 128)), Some(&(i as u32)));
        }
    }

    #[test]
    fn distinct_keys_hash_differently_in_practice() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = Default::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(b.hash_one(i * 128));
        }
        assert!(seen.len() > 9_990, "too many collisions: {}", seen.len());
    }
}
