//! Canonical byte-serialization and 128-bit content fingerprints.
//!
//! The result cache (`gpu_sim::cache`) keys every memoized simulation by a
//! fingerprint of its inputs. Two properties make that sound:
//!
//! 1. **Canonical bytes.** Every input type serializes through [`Canon`]
//!    into a [`CanonBuf`] with a fixed field order and fixed-width encodings
//!    (integers little-endian, floats as IEEE-754 bit patterns, strings
//!    length-prefixed). The same logical value always produces the same
//!    bytes, on every platform.
//! 2. **Stable hashing.** [`fingerprint`] reduces those bytes to 128 bits
//!    with a two-lane SplitMix64 mix — the same in-tree primitive as
//!    [`crate::rng::SplitMix64`] — so the mapping never changes underneath
//!    stored cache entries. Any intentional change to an encoding or to the
//!    mix *must* be accompanied by an engine-version bump; the golden
//!    fingerprint test in `gpu-sim` fails loudly otherwise.
//!
//! [`CanonReader`] is the inverse of [`CanonBuf`] and is deliberately
//! forgiving: every read returns `Option` so that a truncated or corrupt
//! cache payload decodes to `None` instead of panicking.

use crate::config::{
    CacheConfig, DramConfig, GpuConfig, PagePolicy, SamplingConfig, WarpSchedPolicy,
};
use crate::tlp::{TlpCombo, TlpLevel};
use std::fmt;

/// Types with a canonical byte representation used for cache fingerprints.
pub trait Canon {
    /// Appends this value's canonical bytes to `buf`.
    fn canon(&self, buf: &mut CanonBuf);
}

/// Append-only byte buffer with fixed-width, little-endian primitive
/// encodings. The writer side of the canonical format.
#[derive(Debug, Default, Clone)]
pub struct CanonBuf {
    bytes: Vec<u8>,
}

impl CanonBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        CanonBuf::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the buffer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Appends one byte.
    pub fn push_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn push_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn push_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64` so 32- and 64-bit hosts agree.
    pub fn push_usize(&mut self, v: usize) {
        self.push_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact, including the
    /// sign of zero and NaN payloads).
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn push_bool(&mut self, v: bool) {
        self.push_u8(v as u8);
    }

    /// Appends a string as a `u64` byte length followed by its UTF-8 bytes.
    pub fn push_str(&mut self, v: &str) {
        self.push_u64(v.len() as u64);
        self.bytes.extend_from_slice(v.as_bytes());
    }

    /// Appends a value implementing [`Canon`].
    pub fn push<T: Canon + ?Sized>(&mut self, v: &T) {
        v.canon(self);
    }
}

/// Cursor over canonical bytes; the reader side of the format.
///
/// Every read returns `Option` — `None` on underrun — so corrupt cache
/// payloads fail soft.
#[derive(Debug)]
pub struct CanonReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> CanonReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        CanonReader { bytes, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn read_usize(&mut self) -> Option<usize> {
        self.read_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Reads an `f64` from its bit pattern.
    pub fn read_f64(&mut self) -> Option<f64> {
        self.read_u64().map(f64::from_bits)
    }

    /// Reads a bool; bytes other than 0/1 are corrupt.
    pub fn read_bool(&mut self) -> Option<bool> {
        match self.read_u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a length-prefixed UTF-8 string slice.
    pub fn read_str(&mut self) -> Option<&'a str> {
        let len = self.read_usize()?;
        std::str::from_utf8(self.take(len)?).ok()
    }
}

/// A 128-bit content fingerprint; the cache key of a memoized simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The fingerprint as a fixed-width lowercase hex string (32 digits),
    /// used in cache file names.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The SplitMix64 finalizer (same constants as [`crate::rng::SplitMix64`]).
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes canonical bytes to a stable 128-bit fingerprint.
///
/// Two independent 64-bit lanes each absorb the input in 8-byte words
/// (zero-padded tail) through the SplitMix64 finalizer, with the second lane
/// pre-rotating its state and scaling the word by the Fx multiplier so the
/// lanes never collapse to the same function. The byte length is folded in
/// last, so prefixes of one another hash differently. This function is part
/// of the on-disk cache contract: changing it orphans every stored entry,
/// and the golden fingerprint test pins it.
pub fn fingerprint(bytes: &[u8]) -> Fingerprint {
    const LANE_A_SEED: u64 = 0x9E37_79B9_7F4A_7C15;
    const LANE_B_SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95; // the Fx multiplier
    let mut a = LANE_A_SEED;
    let mut b = LANE_B_SEED;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap());
        a = mix64(a ^ w);
        b = mix64(b.rotate_left(32) ^ w.wrapping_mul(LANE_B_SEED));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        let w = u64::from_le_bytes(tail);
        a = mix64(a ^ w);
        b = mix64(b.rotate_left(32) ^ w.wrapping_mul(LANE_B_SEED));
    }
    a = mix64(a ^ bytes.len() as u64);
    b = mix64(b.rotate_left(32) ^ (bytes.len() as u64).wrapping_mul(LANE_B_SEED));
    Fingerprint(((a as u128) << 64) | b as u128)
}

impl Canon for TlpLevel {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_u32(self.get());
    }
}

impl Canon for TlpCombo {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_usize(self.len());
        for l in self.levels() {
            buf.push(l);
        }
    }
}

impl Canon for CacheConfig {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_u64(self.capacity_bytes);
        buf.push_usize(self.associativity);
        buf.push_usize(self.mshr_entries);
        buf.push_usize(self.mshr_merge);
        buf.push_u32(self.hit_latency);
    }
}

impl Canon for PagePolicy {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_u8(match self {
            PagePolicy::Open => 0,
            PagePolicy::Closed => 1,
        });
    }
}

impl Canon for WarpSchedPolicy {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_u8(match self {
            WarpSchedPolicy::Gto => 0,
            WarpSchedPolicy::Lrr => 1,
        });
    }
}

impl Canon for DramConfig {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_usize(self.n_banks);
        buf.push_usize(self.n_bank_groups);
        buf.push_u64(self.row_bytes);
        buf.push_u32(self.t_cl);
        buf.push_u32(self.t_rp);
        buf.push_u32(self.t_rcd);
        buf.push_u32(self.t_ras);
        buf.push_u32(self.t_ccd_l);
        buf.push_u32(self.t_ccd_s);
        buf.push_u32(self.t_rrd);
        buf.push_u32(self.burst_cycles);
        buf.push(&self.page_policy);
    }
}

impl Canon for SamplingConfig {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_u64(self.window_cycles);
        buf.push_u64(self.relay_latency);
        buf.push_usize(self.table_entries);
        buf.push_bool(self.designated);
    }
}

impl Canon for GpuConfig {
    fn canon(&self, buf: &mut CanonBuf) {
        buf.push_usize(self.n_cores);
        buf.push_usize(self.warps_per_core);
        buf.push_usize(self.threads_per_warp);
        buf.push_usize(self.schedulers_per_core);
        buf.push(&self.l1);
        buf.push(&self.l2);
        buf.push_usize(self.n_partitions);
        buf.push(&self.dram);
        buf.push_usize(self.xbar_requests_per_cycle);
        buf.push_u32(self.xbar_latency);
        buf.push(&self.sampling);
        buf.push(&self.scheduler);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = CanonBuf::new();
        buf.push_u8(7);
        buf.push_u32(0xDEAD_BEEF);
        buf.push_u64(u64::MAX - 1);
        buf.push_usize(42);
        buf.push_f64(-0.0);
        buf.push_bool(true);
        buf.push_str("BLK_BFS");
        let bytes = buf.into_bytes();
        let mut r = CanonReader::new(&bytes);
        assert_eq!(r.read_u8(), Some(7));
        assert_eq!(r.read_u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.read_u64(), Some(u64::MAX - 1));
        assert_eq!(r.read_usize(), Some(42));
        assert_eq!(r.read_f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.read_bool(), Some(true));
        assert_eq!(r.read_str(), Some("BLK_BFS"));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_fail_soft() {
        let mut buf = CanonBuf::new();
        buf.push_u64(123);
        let bytes = buf.into_bytes();
        let mut r = CanonReader::new(&bytes[..5]);
        assert_eq!(r.read_u64(), None);
        // A string whose claimed length exceeds the buffer must not panic.
        let mut buf = CanonBuf::new();
        buf.push_u64(1_000);
        buf.push_u8(b'x');
        let bytes = buf.into_bytes();
        assert_eq!(CanonReader::new(&bytes).read_str(), None);
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut r = CanonReader::new(&[2]);
        assert_eq!(r.read_bool(), None);
    }

    #[test]
    fn fingerprint_is_deterministic_and_length_aware() {
        let a = fingerprint(b"effective bandwidth");
        assert_eq!(a, fingerprint(b"effective bandwidth"));
        assert_ne!(a, fingerprint(b"effective bandwidtH"));
        // Zero padding of the tail must not collide with explicit zeros.
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abc\0"));
        assert_ne!(fingerprint(b""), fingerprint(b"\0"));
    }

    #[test]
    fn config_canon_distinguishes_presets_and_fields() {
        fn fp(cfg: &GpuConfig) -> Fingerprint {
            let mut buf = CanonBuf::new();
            buf.push(cfg);
            fingerprint(buf.as_bytes())
        }
        let paper = GpuConfig::paper();
        let small = GpuConfig::small();
        assert_eq!(fp(&paper), fp(&paper.clone()));
        assert_ne!(fp(&paper), fp(&small));
        let mut tweaked = GpuConfig::paper();
        tweaked.dram.page_policy = PagePolicy::Closed;
        assert_ne!(fp(&paper), fp(&tweaked));
        let mut tweaked = GpuConfig::paper();
        tweaked.scheduler = WarpSchedPolicy::Lrr;
        assert_ne!(fp(&paper), fp(&tweaked));
    }

    #[test]
    fn combo_canon_distinguishes_order() {
        fn fp(c: &TlpCombo) -> Fingerprint {
            let mut buf = CanonBuf::new();
            buf.push(c);
            fingerprint(buf.as_bytes())
        }
        let ab = TlpCombo::pair(TlpLevel::new(4).unwrap(), TlpLevel::new(8).unwrap());
        let ba = TlpCombo::pair(TlpLevel::new(8).unwrap(), TlpLevel::new(4).unwrap());
        assert_ne!(fp(&ab), fp(&ba));
    }
}
