//! TLP (thread-level parallelism) levels and multi-application combinations.
//!
//! The paper controls each application's shared-resource consumption through
//! a single knob: the number of warps each warp scheduler may actively issue
//! from (static warp limiting, SWL). With 48 warps per core and two
//! schedulers per core, the maximum per-scheduler TLP is 24; searching
//! profiles 8 levels per application, giving the 8×8 = 64 combinations that
//! the oracle (`opt*`) and brute-force (`BF-*`) schemes sweep.

use std::fmt;

/// The TLP ladder the paper's searches walk: 8 levels per application,
/// yielding 64 two-application combinations.
pub const LADDER: [u32; 8] = [1, 2, 4, 6, 8, 12, 16, 24];

/// Maximum warps an individual warp scheduler can be assigned
/// (48 warps per core / 2 schedulers).
pub const MAX_TLP: u32 = 24;

/// A per-application TLP limit: active warps per warp scheduler, in
/// `1..=`[`MAX_TLP`].
///
/// ```
/// use gpu_types::tlp::TlpLevel;
/// let t = TlpLevel::new(8).unwrap();
/// assert_eq!(t.get(), 8);
/// assert!(TlpLevel::new(0).is_none());
/// assert!(TlpLevel::new(25).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TlpLevel(u32);

impl TlpLevel {
    /// Minimum level: one active warp per scheduler.
    pub const MIN: TlpLevel = TlpLevel(1);
    /// Maximum level: all 24 warps per scheduler active ("maxTLP").
    pub const MAX: TlpLevel = TlpLevel(MAX_TLP);

    /// Creates a level, returning `None` when outside `1..=24`.
    pub const fn new(level: u32) -> Option<Self> {
        if level >= 1 && level <= MAX_TLP {
            Some(TlpLevel(level))
        } else {
            None
        }
    }

    /// The number of active warps per scheduler.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The 8-level ladder used by every search in the paper.
    pub fn ladder() -> impl ExactSizeIterator<Item = TlpLevel> + DoubleEndedIterator {
        LADDER.into_iter().map(TlpLevel)
    }

    /// Position of this level in the ladder, if it lies on it.
    pub fn ladder_index(self) -> Option<usize> {
        LADDER.iter().position(|&l| l == self.0)
    }

    /// Next level up the ladder (toward maxTLP); `None` at the top or when
    /// off-ladder.
    pub fn step_up(self) -> Option<TlpLevel> {
        let i = self.ladder_index()?;
        LADDER.get(i + 1).map(|&l| TlpLevel(l))
    }

    /// Next level down the ladder (toward 1); `None` at the bottom or when
    /// off-ladder.
    pub fn step_down(self) -> Option<TlpLevel> {
        let i = self.ladder_index()?;
        i.checked_sub(1).map(|j| TlpLevel(LADDER[j]))
    }
}

impl fmt::Display for TlpLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A TLP assignment for every co-scheduled application in a workload.
///
/// ```
/// use gpu_types::tlp::{TlpCombo, TlpLevel};
/// let c = TlpCombo::pair(TlpLevel::new(2).unwrap(), TlpLevel::new(8).unwrap());
/// assert_eq!(c.to_string(), "(2,8)");
/// assert_eq!(c.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TlpCombo(Vec<TlpLevel>);

impl TlpCombo {
    /// A combination from per-application levels, in [`crate::AppId`] order.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(levels: Vec<TlpLevel>) -> Self {
        assert!(
            !levels.is_empty(),
            "a TLP combination needs at least one application"
        );
        TlpCombo(levels)
    }

    /// Convenience constructor for the two-application case.
    pub fn pair(a: TlpLevel, b: TlpLevel) -> Self {
        TlpCombo(vec![a, b])
    }

    /// Every application at the same level.
    pub fn uniform(level: TlpLevel, n_apps: usize) -> Self {
        assert!(
            n_apps > 0,
            "a TLP combination needs at least one application"
        );
        TlpCombo(vec![level; n_apps])
    }

    /// Number of applications in the combination.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the combination holds no applications (never constructible).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The level of application `app` (zero-based).
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range.
    pub fn level(&self, app: usize) -> TlpLevel {
        self.0[app]
    }

    /// Per-application levels in application order.
    pub fn levels(&self) -> &[TlpLevel] {
        &self.0
    }

    /// Returns a copy with application `app` set to `level`.
    pub fn with_level(&self, app: usize, level: TlpLevel) -> TlpCombo {
        let mut v = self.0.clone();
        v[app] = level;
        TlpCombo(v)
    }

    /// Iterates over every ladder combination for `n_apps` applications
    /// (`8^n_apps` combinations — 64 for two applications).
    pub fn all(n_apps: usize) -> Vec<TlpCombo> {
        assert!(
            n_apps > 0,
            "a TLP combination needs at least one application"
        );
        let mut out = vec![TlpCombo(Vec::new())];
        for _ in 0..n_apps {
            let mut next = Vec::with_capacity(out.len() * LADDER.len());
            for combo in &out {
                for l in TlpLevel::ladder() {
                    let mut v = combo.0.clone();
                    v.push(l);
                    next.push(TlpCombo(v));
                }
            }
            out = next;
        }
        out
    }
}

impl fmt::Display for TlpCombo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_has_eight_levels_ending_at_max() {
        let ladder: Vec<_> = TlpLevel::ladder().collect();
        assert_eq!(ladder.len(), 8);
        assert_eq!(ladder[0], TlpLevel::MIN);
        assert_eq!(*ladder.last().unwrap(), TlpLevel::MAX);
        assert!(
            ladder.windows(2).all(|w| w[0] < w[1]),
            "ladder must be increasing"
        );
    }

    #[test]
    fn new_validates_range() {
        assert!(TlpLevel::new(0).is_none());
        assert!(TlpLevel::new(1).is_some());
        assert!(TlpLevel::new(24).is_some());
        assert!(TlpLevel::new(25).is_none());
    }

    #[test]
    fn step_up_and_down_walk_the_ladder() {
        let l4 = TlpLevel::new(4).unwrap();
        assert_eq!(l4.step_up(), TlpLevel::new(6));
        assert_eq!(l4.step_down(), TlpLevel::new(2));
        assert_eq!(TlpLevel::MIN.step_down(), None);
        assert_eq!(TlpLevel::MAX.step_up(), None);
    }

    #[test]
    fn off_ladder_levels_do_not_step() {
        let l3 = TlpLevel::new(3).unwrap();
        assert_eq!(l3.ladder_index(), None);
        assert_eq!(l3.step_up(), None);
        assert_eq!(l3.step_down(), None);
    }

    #[test]
    fn all_two_app_combinations_number_sixty_four() {
        let combos = TlpCombo::all(2);
        assert_eq!(combos.len(), 64);
        // All distinct.
        let set: std::collections::HashSet<_> = combos.iter().cloned().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn all_three_app_combinations_number_512() {
        assert_eq!(TlpCombo::all(3).len(), 512);
    }

    #[test]
    fn with_level_replaces_only_target() {
        let c = TlpCombo::pair(TlpLevel::new(2).unwrap(), TlpLevel::new(8).unwrap());
        let c2 = c.with_level(0, TlpLevel::new(16).unwrap());
        assert_eq!(c2.level(0).get(), 16);
        assert_eq!(c2.level(1).get(), 8);
        assert_eq!(c.level(0).get(), 2, "original untouched");
    }

    #[test]
    fn display_matches_paper_notation() {
        let c = TlpCombo::pair(TlpLevel::new(2).unwrap(), TlpLevel::new(8).unwrap());
        assert_eq!(c.to_string(), "(2,8)");
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_combo_panics() {
        let _ = TlpCombo::new(Vec::new());
    }
}
