//! Common identifiers, configuration, statistics and deterministic RNG shared
//! by every crate of the `gpu-ebm` workspace.
//!
//! This crate is the foundation of the simulator substrate: it defines the
//! strongly-typed identifiers ([`AppId`], [`CoreId`], [`PartitionId`], …), the
//! simulated-machine description ([`GpuConfig`]), the TLP (thread-level
//! parallelism) ladder the paper searches over ([`tlp::TlpLevel`]), raw
//! hardware statistics counters ([`stats`]) and a small deterministic RNG
//! ([`rng::SplitMix64`]) so that a `(config, seed)` pair fully determines a
//! simulation.
//!
//! # Example
//!
//! ```
//! use gpu_types::{GpuConfig, tlp::TlpLevel};
//!
//! let cfg = GpuConfig::paper();
//! assert_eq!(cfg.max_tlp(), TlpLevel::new(24).unwrap());
//! cfg.validate().unwrap();
//! ```

#![deny(missing_docs)]

pub mod addr;
pub mod canon;
pub mod config;
pub mod fxmap;
pub mod hist;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod tlp;

pub use addr::{Address, LINE_SIZE};
pub use canon::{fingerprint, Canon, CanonBuf, CanonReader, Fingerprint};
pub use config::{
    CacheConfig, ConfigError, DramConfig, GpuConfig, PagePolicy, SamplingConfig, WarpSchedPolicy,
};
pub use fxmap::{FxHashMap, FxHashSet, FxHasher};
pub use hist::{Histogram, HIST_BUCKETS};
pub use ids::{AppId, CoreId, PartitionId, WarpId};
pub use rng::SplitMix64;
pub use stats::{AppWindow, MemCounters};
pub use tlp::{TlpCombo, TlpLevel};
