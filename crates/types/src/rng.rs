//! A tiny deterministic PRNG.
//!
//! The simulator must be exactly reproducible from a `(config, seed)` pair —
//! every table and figure harness, and many tests, rely on it. We use
//! SplitMix64 (Steele et al., "Fast splittable pseudorandom number
//! generators", OOPSLA 2014): one `u64` of state, passes BigCrush, and is
//! trivially *splittable* so each warp owns an independent stream.

/// SplitMix64 pseudorandom number generator.
///
/// ```
/// use gpu_types::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for practical purposes.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child generator; used to give each warp its own
    /// stream so that reordering warp execution does not perturb other warps'
    /// address sequences.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// reduction (slightly biased for astronomically large bounds, which is
    /// irrelevant at simulator scales).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_independent_of_parent_consumption() {
        let mut parent1 = SplitMix64::new(99);
        let child1 = parent1.split();
        let mut parent2 = SplitMix64::new(99);
        let child2 = parent2.split();
        assert_eq!(child1, child2);
        // Parent keeps producing after split without affecting the child.
        let mut c1 = child1;
        let mut c2 = child2;
        parent1.next_u64();
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = SplitMix64::new(5);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow 10% slack.
            assert!((9_000..=11_000).contains(&c), "count {c} out of range");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(13);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
