//! Fixed-size, allocation-free log-bucketed histograms.
//!
//! [`Histogram`] is the primitive underneath the `gpu_sim::metrics`
//! registry: every latency/occupancy distribution sampled by the
//! simulator (DRAM request latency, MSHR occupancy, queue depths) is
//! recorded into one of these.  Design constraints, in order:
//!
//! * **zero heap allocation** — the whole struct is a flat array plus
//!   four scalars, so recording on the hot path costs a handful of
//!   integer ops and never touches the allocator (the PR 3 engine
//!   invariant);
//! * **mergeable** — per-component histograms are combined into per-app
//!   and machine-wide views with [`Histogram::merge`];
//! * **windowed** — [`Histogram::take`] returns the accumulated window
//!   and resets in place, because window-local `min`/`max` cannot be
//!   recovered by diffing cumulative snapshots.
//!
//! Buckets are powers of two: bucket 0 holds the value `0`, bucket
//! `i >= 1` holds `[2^(i-1), 2^i - 1]`, and the last bucket is
//! unbounded above.  Exact `count`/`sum`/`min`/`max` are kept alongside
//! so means are exact and percentile estimates can be clamped into the
//! observed range.

/// Number of buckets in a [`Histogram`] (covers `0..2^30` exactly; the
/// final bucket absorbs everything larger).
pub const HIST_BUCKETS: usize = 32;

/// A log-bucketed histogram of `u64` samples.  See the module docs for
/// the bucketing scheme and design constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// The bucket index `v` falls into: 0 for the value `0`, otherwise
    /// the number of significant bits (clamped to the last bucket).
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// The inclusive `[lo, hi]` value range of bucket `i`.
    ///
    /// # Panics
    /// If `i >= HIST_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HIST_BUCKETS);
        if i == 0 {
            (0, 0)
        } else if i == HIST_BUCKETS - 1 {
            (1 << (i - 1), u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Folds `other` into `self` (as if every sample of `other` had been
    /// recorded here too).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Returns the accumulated histogram and resets `self` to empty —
    /// the per-window snapshot operation.
    pub fn take(&mut self) -> Histogram {
        std::mem::take(self)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimated `p`-th percentile (`p` in `[0, 1]`): the upper bound of
    /// the bucket containing the `ceil(p * count)`-th sample, clamped
    /// into the observed `[min, max]` range.  Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                let (_, hi) = Self::bucket_bounds(i);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Rebuilds a histogram from its serialized parts (what a trace
    /// consumer like `trace-tools` reads back from a `metrics_window`
    /// event).  `buckets` may be shorter than [`HIST_BUCKETS`] (trailing
    /// zero buckets are trimmed on the wire); longer inputs or parts
    /// that violate count conservation are rejected.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: &[u64],
    ) -> Result<Histogram, String> {
        if buckets.len() > HIST_BUCKETS {
            return Err(format!(
                "histogram has {} buckets, max {HIST_BUCKETS}",
                buckets.len()
            ));
        }
        let mut h = Histogram::new();
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        h.buckets[..buckets.len()].copy_from_slice(buckets);
        if h.buckets.iter().sum::<u64>() != count {
            return Err(format!("bucket counts do not sum to count={count}"));
        }
        if count > 0 && min > max {
            return Err(format!("min {min} > max {max}"));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn bucket_of_matches_bounds() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 100, 1 << 20, u64::MAX] {
            let i = Histogram::bucket_of(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} bucket={i} range=[{lo},{hi}]");
        }
    }

    #[test]
    fn record_take_resets() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(100);
        let snap = h.take();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min(), 5);
        assert_eq!(snap.max(), 100);
        assert_eq!(snap.sum(), 105);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_equals_interleaved_records() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 17, 0, 9000] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 1 << 25] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 1000] {
            h.record(v);
        }
        let trimmed: Vec<u64> = {
            let b = h.buckets();
            let last = b.iter().rposition(|&x| x != 0).map_or(0, |i| i + 1);
            b[..last].to_vec()
        };
        let back = Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), &trimmed).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn from_parts_rejects_bad_counts() {
        assert!(Histogram::from_parts(3, 0, 0, 0, &[1, 1]).is_err());
        assert!(Histogram::from_parts(2, 0, 5, 1, &[2]).is_err());
        assert!(Histogram::from_parts(0, 0, 0, 0, &vec![0u64; HIST_BUCKETS + 1]).is_err());
    }
}
