//! Simulated-machine description.
//!
//! [`GpuConfig`] captures the baseline architecture of §II-A / Table I of the
//! paper: SIMT cores with private L1 data caches, a crossbar to memory
//! partitions each holding an L2 slice and a GDDR5 channel behind an FR-FCFS
//! controller. Three presets are provided:
//!
//! * [`GpuConfig::paper`] — the evaluation configuration (reconstructed from
//!   the garbled OCR against GPGPU-Sim v3.x / MAFIA defaults, see DESIGN.md).
//! * [`GpuConfig::small`] — a scaled-down machine for fast unit tests.
//! * [`GpuConfig::volta`] — an 80-SM Volta-scale machine for intra-simulation
//!   parallelism scaling runs (docs/PARALLELISM.md).

use crate::tlp::{TlpLevel, MAX_TLP};
use std::fmt;

/// Configuration of one cache level (an L1 data cache or an L2 slice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Number of MSHR (miss status holding register) entries; bounds the
    /// number of distinct in-flight miss lines.
    pub mshr_entries: usize,
    /// Maximum requests merged into a single MSHR entry.
    pub mshr_merge: usize,
    /// Cache hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by capacity, associativity and the global line
    /// size.
    pub fn n_sets(&self) -> usize {
        (self.capacity_bytes / crate::LINE_SIZE) as usize / self.associativity
    }

    /// Number of lines the cache holds.
    pub fn n_lines(&self) -> usize {
        (self.capacity_bytes / crate::LINE_SIZE) as usize
    }

    fn validate(&self, what: &str) -> Result<(), ConfigError> {
        let lines = self.capacity_bytes / crate::LINE_SIZE;
        if self.capacity_bytes == 0 || !self.capacity_bytes.is_multiple_of(crate::LINE_SIZE) {
            return Err(ConfigError::new(format!(
                "{what}: capacity {} is not a positive multiple of the line size",
                self.capacity_bytes
            )));
        }
        if self.associativity == 0 || !lines.is_multiple_of(self.associativity as u64) {
            return Err(ConfigError::new(format!(
                "{what}: associativity {} does not divide {} lines",
                self.associativity, lines
            )));
        }
        if !(lines as usize / self.associativity).is_power_of_two() {
            return Err(ConfigError::new(format!(
                "{what}: set count {} is not a power of two",
                lines as usize / self.associativity
            )));
        }
        if self.mshr_entries == 0 || self.mshr_merge == 0 {
            return Err(ConfigError::new(format!(
                "{what}: MSHR sizes must be non-zero"
            )));
        }
        Ok(())
    }
}

/// GDDR5 DRAM timing and geometry for one channel (Table I, Hynix GDDR5).
///
/// All timings are in (core-aligned) DRAM command cycles; see DESIGN.md §2 on
/// the single clock domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Banks per channel.
    pub n_banks: usize,
    /// Bank groups per channel (banks are distributed round-robin).
    pub n_bank_groups: usize,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u64,
    /// CAS latency: ACTIVATE-to-data / READ-to-data delay component.
    pub t_cl: u32,
    /// Row precharge time.
    pub t_rp: u32,
    /// RAS-to-CAS delay (ACTIVATE to READ/WRITE).
    pub t_rcd: u32,
    /// Minimum row-open time (ACTIVATE to PRECHARGE).
    pub t_ras: u32,
    /// Column-to-column delay, same bank group.
    pub t_ccd_l: u32,
    /// Column-to-column delay, different bank group.
    pub t_ccd_s: u32,
    /// ACTIVATE-to-ACTIVATE delay across banks.
    pub t_rrd: u32,
    /// Data-bus cycles one 128-byte line transfer occupies; sets peak
    /// bandwidth at `LINE_SIZE / burst_cycles` bytes/cycle/channel.
    pub burst_cycles: u32,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

impl DramConfig {
    /// Peak useful data bandwidth of one channel in bytes per cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        crate::LINE_SIZE as f64 / self.burst_cycles as f64
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.n_banks == 0
            || self.n_bank_groups == 0
            || !self.n_banks.is_multiple_of(self.n_bank_groups)
        {
            return Err(ConfigError::new(format!(
                "dram: {} banks must be a positive multiple of {} bank groups",
                self.n_banks, self.n_bank_groups
            )));
        }
        if self.row_bytes == 0 || !self.row_bytes.is_multiple_of(crate::LINE_SIZE) {
            return Err(ConfigError::new(
                "dram: row size must be a positive multiple of the line size".to_owned(),
            ));
        }
        if self.burst_cycles == 0 {
            return Err(ConfigError::new(
                "dram: burst_cycles must be non-zero".to_owned(),
            ));
        }
        Ok(())
    }
}

/// DRAM row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Rows stay open after a column access (the paper's FR-FCFS baseline
    /// exploits them for row hits).
    #[default]
    Open,
    /// Rows auto-precharge after every column access: no row hits, but no
    /// conflict precharge either. Used by the `dram_policy` ablation.
    Closed,
}

/// Warp scheduling policy of every core's schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarpSchedPolicy {
    /// Greedy-then-oldest (the paper's baseline, Table I).
    #[default]
    Gto,
    /// Loose round-robin: scanning resumes after the last issued warp, so
    /// warps progress in lockstep. Used by the `sched` sensitivity study.
    Lrr,
}

/// Parameters of the runtime sampling hardware (Fig. 8 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Cycles each probed TLP combination is observed before its EB sample is
    /// recorded ("monitoring interval").
    pub window_cycles: u64,
    /// Latency, in cycles, for the designated memory partition to relay its
    /// counters to the cores over the crossbar (the paper conservatively
    /// assumes a fixed relay latency).
    pub relay_latency: u64,
    /// Capacity of the EB sampling table (combinations remembered).
    pub table_entries: usize,
    /// When true, controllers observe the Fig. 8 *designated* counters (one
    /// core + one memory partition per application, scaled up) instead of
    /// exact aggregates. §V-E's uniformity observation makes the two
    /// equivalent in practice; the `sampling` experiment quantifies it.
    pub designated: bool,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            window_cycles: 2_000,
            relay_latency: 100,
            table_entries: 16,
            designated: false,
        }
    }
}

/// Full description of the simulated GPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuConfig {
    /// Number of SIMT cores. Cores are divided into equal exclusive
    /// partitions, one per co-scheduled application (§II-A).
    pub n_cores: usize,
    /// Warp slots per core (Table I: 48 warps of 32 threads).
    pub warps_per_core: usize,
    /// Threads per warp (SIMT width).
    pub threads_per_warp: usize,
    /// Warp schedulers per core; each owns an equal share of the warp slots.
    pub schedulers_per_core: usize,
    /// Private L1 data cache, one per core.
    pub l1: CacheConfig,
    /// One L2 slice per memory partition.
    pub l2: CacheConfig,
    /// Memory partitions (L2 slice + memory controller + GDDR5 channel).
    pub n_partitions: usize,
    /// DRAM channel behind each partition.
    pub dram: DramConfig,
    /// Requests the crossbar accepts per core per cycle (and per partition on
    /// the return path).
    pub xbar_requests_per_cycle: usize,
    /// One-way interconnect traversal latency in cycles.
    pub xbar_latency: u32,
    /// Runtime-sampling hardware parameters.
    pub sampling: SamplingConfig,
    /// Warp scheduling policy (GTO in the paper).
    pub scheduler: WarpSchedPolicy,
}

impl GpuConfig {
    /// The paper's evaluation machine (DESIGN.md §2): 16 cores × 48 warps,
    /// 16 KB 4-way L1s, six memory partitions with 128 KB 8-way L2 slices and
    /// GDDR5 timing.
    pub fn paper() -> Self {
        GpuConfig {
            n_cores: 16,
            warps_per_core: 48,
            threads_per_warp: 32,
            schedulers_per_core: 2,
            l1: CacheConfig {
                capacity_bytes: 16 * 1024,
                associativity: 4,
                mshr_entries: 128,
                mshr_merge: 8,
                hit_latency: 1,
            },
            l2: CacheConfig {
                capacity_bytes: 128 * 1024,
                associativity: 8,
                mshr_entries: 64,
                mshr_merge: 8,
                hit_latency: 8,
            },
            n_partitions: 6,
            dram: DramConfig {
                n_banks: 16,
                n_bank_groups: 4,
                row_bytes: 2048,
                t_cl: 12,
                t_rp: 12,
                t_rcd: 12,
                t_ras: 28,
                t_ccd_l: 4,
                t_ccd_s: 2,
                t_rrd: 6,
                burst_cycles: 4,
                page_policy: PagePolicy::Open,
            },
            xbar_requests_per_cycle: 1,
            xbar_latency: 8,
            sampling: SamplingConfig::default(),
            scheduler: WarpSchedPolicy::Gto,
        }
    }

    /// A scaled-down machine for fast tests: 4 cores × 16 warps, 4 KB L1s,
    /// two partitions with 32 KB L2 slices.
    pub fn small() -> Self {
        GpuConfig {
            n_cores: 4,
            warps_per_core: 16,
            threads_per_warp: 32,
            schedulers_per_core: 2,
            l1: CacheConfig {
                capacity_bytes: 4 * 1024,
                associativity: 4,
                mshr_entries: 16,
                mshr_merge: 8,
                hit_latency: 1,
            },
            l2: CacheConfig {
                capacity_bytes: 32 * 1024,
                associativity: 8,
                mshr_entries: 32,
                mshr_merge: 8,
                hit_latency: 8,
            },
            n_partitions: 2,
            dram: DramConfig {
                n_banks: 8,
                n_bank_groups: 4,
                row_bytes: 1024,
                t_cl: 12,
                t_rp: 12,
                t_rcd: 12,
                t_ras: 28,
                t_ccd_l: 4,
                t_ccd_s: 2,
                t_rrd: 6,
                burst_cycles: 4,
                page_policy: PagePolicy::Open,
            },
            xbar_requests_per_cycle: 1,
            xbar_latency: 4,
            sampling: SamplingConfig {
                window_cycles: 2_000,
                relay_latency: 20,
                table_entries: 16,
                designated: false,
            },
            scheduler: WarpSchedPolicy::Gto,
        }
    }

    /// A Volta-scale machine (80 SMs × 64 warps, 4 schedulers per SM,
    /// 32 KB 4-way L1s, sixteen memory partitions with 256 KB 16-way L2
    /// slices — 4 MB aggregate — over the paper's GDDR5 channel model).
    ///
    /// This is the big-machine preset for intra-simulation parallelism
    /// scaling runs (`perf_smoke`, BENCH_parallel.json): large enough that
    /// per-cycle work dominates barrier overhead when the machine is split
    /// across `EBM_SIM_THREADS` domains. The SM/warp geometry follows the
    /// Volta Titan V constants (80 SMs, 64 warp slots per SM); the memory
    /// side keeps the paper's DRAM timings so behavior stays comparable.
    pub fn volta() -> Self {
        GpuConfig {
            n_cores: 80,
            warps_per_core: 64,
            threads_per_warp: 32,
            schedulers_per_core: 4,
            l1: CacheConfig {
                capacity_bytes: 32 * 1024,
                associativity: 4,
                mshr_entries: 128,
                mshr_merge: 8,
                hit_latency: 1,
            },
            l2: CacheConfig {
                capacity_bytes: 256 * 1024,
                associativity: 16,
                mshr_entries: 128,
                mshr_merge: 8,
                hit_latency: 8,
            },
            n_partitions: 16,
            dram: DramConfig {
                n_banks: 16,
                n_bank_groups: 4,
                row_bytes: 2048,
                t_cl: 12,
                t_rp: 12,
                t_rcd: 12,
                t_ras: 28,
                t_ccd_l: 4,
                t_ccd_s: 2,
                t_rrd: 6,
                burst_cycles: 4,
                page_policy: PagePolicy::Open,
            },
            xbar_requests_per_cycle: 1,
            xbar_latency: 8,
            sampling: SamplingConfig::default(),
            scheduler: WarpSchedPolicy::Gto,
        }
    }

    /// Warp slots owned by each scheduler.
    pub fn warps_per_scheduler(&self) -> usize {
        self.warps_per_core / self.schedulers_per_core
    }

    /// The highest TLP level realizable on this machine (per scheduler).
    /// On the paper machine this is 24; scaled-down machines clamp lower.
    pub fn max_tlp(&self) -> TlpLevel {
        let cap = (self.warps_per_scheduler() as u32).min(MAX_TLP);
        TlpLevel::new(cap).expect("warps_per_scheduler >= 1 guaranteed by validate")
    }

    /// Clamps a requested TLP level to what this machine can realize.
    pub fn clamp_tlp(&self, level: TlpLevel) -> TlpLevel {
        level.min(self.max_tlp())
    }

    /// Aggregate theoretical peak DRAM bandwidth in bytes per cycle; attained
    /// bandwidth (BW) is reported normalized to this value.
    pub fn peak_bw_bytes_per_cycle(&self) -> f64 {
        self.dram.peak_bytes_per_cycle() * self.n_partitions as f64
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_cores == 0 {
            return Err(ConfigError::new("n_cores must be non-zero".to_owned()));
        }
        if self.n_partitions == 0 {
            return Err(ConfigError::new("n_partitions must be non-zero".to_owned()));
        }
        if self.schedulers_per_core == 0
            || !self.warps_per_core.is_multiple_of(self.schedulers_per_core)
        {
            return Err(ConfigError::new(format!(
                "warps_per_core {} must be a positive multiple of schedulers_per_core {}",
                self.warps_per_core, self.schedulers_per_core
            )));
        }
        if self.threads_per_warp == 0 {
            return Err(ConfigError::new(
                "threads_per_warp must be non-zero".to_owned(),
            ));
        }
        if self.xbar_requests_per_cycle == 0 {
            return Err(ConfigError::new(
                "xbar_requests_per_cycle must be non-zero".to_owned(),
            ));
        }
        if self.sampling.window_cycles == 0 {
            return Err(ConfigError::new(
                "sampling window must be non-zero".to_owned(),
            ));
        }
        self.l1.validate("l1")?;
        self.l2.validate("l2")?;
        self.dram.validate()?;
        Ok(())
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::paper()
    }
}

/// Error returned by [`GpuConfig::validate`] when a configuration is
/// internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: String) -> Self {
        ConfigError { message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        GpuConfig::paper().validate().unwrap();
        GpuConfig::small().validate().unwrap();
        GpuConfig::volta().validate().unwrap();
    }

    #[test]
    fn volta_geometry() {
        let cfg = GpuConfig::volta();
        assert_eq!(cfg.n_cores, 80);
        assert_eq!(cfg.warps_per_core, 64);
        // Two-app workloads must split the cores evenly.
        assert!(cfg.n_cores.is_multiple_of(2));
        assert_eq!(cfg.max_tlp().get(), 16);
        // 16 × 256 KB slices = 4 MB of L2.
        assert_eq!(cfg.l2.capacity_bytes * cfg.n_partitions as u64, 4 << 20);
    }

    #[test]
    fn paper_max_tlp_is_24() {
        assert_eq!(GpuConfig::paper().max_tlp().get(), 24);
    }

    #[test]
    fn small_machine_clamps_tlp() {
        let cfg = GpuConfig::small();
        assert_eq!(cfg.max_tlp().get(), 8);
        assert_eq!(cfg.clamp_tlp(TlpLevel::MAX).get(), 8);
        assert_eq!(cfg.clamp_tlp(TlpLevel::new(4).unwrap()).get(), 4);
    }

    #[test]
    fn cache_geometry() {
        let l1 = GpuConfig::paper().l1;
        assert_eq!(l1.n_lines(), 128);
        assert_eq!(l1.n_sets(), 32);
    }

    #[test]
    fn peak_bandwidth_scales_with_partitions() {
        let cfg = GpuConfig::paper();
        let per_channel = cfg.dram.peak_bytes_per_cycle();
        assert_eq!(per_channel, 32.0);
        assert_eq!(cfg.peak_bw_bytes_per_cycle(), 32.0 * 6.0);
    }

    #[test]
    fn validate_rejects_bad_capacity() {
        let mut cfg = GpuConfig::paper();
        cfg.l1.capacity_bytes = 100; // not a multiple of 128
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("l1"), "{err}");
    }

    #[test]
    fn validate_rejects_non_pow2_sets() {
        let mut cfg = GpuConfig::paper();
        cfg.l1.capacity_bytes = 3 * 128 * 4; // 3 sets at 4-way
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_bank_group_mismatch() {
        let mut cfg = GpuConfig::paper();
        cfg.dram.n_banks = 10; // not a multiple of 4 groups
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_cores() {
        let mut cfg = GpuConfig::paper();
        cfg.n_cores = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_odd_scheduler_split() {
        let mut cfg = GpuConfig::paper();
        cfg.warps_per_core = 47;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(GpuConfig::default(), GpuConfig::paper());
    }
}
