//! Strongly-typed identifiers for the simulated machine.
//!
//! Using newtypes instead of bare integers prevents the classic simulator bug
//! of indexing the cores array with a partition id (C-NEWTYPE).

use std::fmt;

/// Identifier of a co-scheduled application (kernel) in a workload.
///
/// The paper evaluates two-application workloads primarily, but the
/// mechanisms extend to `n` applications (§VI-D); `AppId` is therefore an
/// open-ended index rather than a two-variant enum.
///
/// ```
/// use gpu_types::AppId;
/// let a = AppId::new(0);
/// assert_eq!(a.index(), 0);
/// assert_eq!(a.to_string(), "App-1"); // paper numbers applications from 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(u8);

impl AppId {
    /// Creates an application id from a zero-based index.
    pub const fn new(index: u8) -> Self {
        AppId(index)
    }

    /// Zero-based index, suitable for indexing per-app arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper labels applications "App-1", "App-2" (one-based).
        write!(f, "App-{}", self.0 + 1)
    }
}

/// Identifier of a SIMT core (a compute unit / streaming multiprocessor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl CoreId {
    /// Zero-based index into the core array.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Core-{}", self.0)
    }
}

/// Identifier of a memory partition (an L2 slice plus its memory controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub usize);

impl PartitionId {
    /// Zero-based index into the partition array.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MP-{}", self.0)
    }
}

/// Identifier of a warp: the owning core plus the warp's slot on that core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WarpId {
    /// Core the warp executes on.
    pub core: CoreId,
    /// Warp slot within the core, `0..warps_per_core`.
    pub slot: usize,
}

impl WarpId {
    /// Creates a warp id from its core and slot.
    pub const fn new(core: CoreId, slot: usize) -> Self {
        WarpId { core, slot }
    }
}

impl fmt::Display for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}.{}", self.core.0, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn app_id_display_is_one_based() {
        assert_eq!(AppId::new(0).to_string(), "App-1");
        assert_eq!(AppId::new(1).to_string(), "App-2");
    }

    #[test]
    fn app_id_index_round_trips() {
        for i in 0..4 {
            assert_eq!(AppId::new(i).index(), i as usize);
        }
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for c in 0..4 {
            for s in 0..4 {
                set.insert(WarpId::new(CoreId(c), s));
            }
        }
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CoreId(3).to_string(), "Core-3");
        assert_eq!(PartitionId(5).to_string(), "MP-5");
        assert_eq!(WarpId::new(CoreId(2), 7).to_string(), "W2.7");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(CoreId(1) < CoreId(2));
        assert!(AppId::new(0) < AppId::new(1));
        assert!(WarpId::new(CoreId(0), 5) < WarpId::new(CoreId(1), 0));
    }
}
