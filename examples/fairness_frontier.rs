//! The throughput–fairness frontier of a workload: sweep all 64 TLP
//! combinations and print the WS/FI Pareto-optimal ones, marking where the
//! paper's objectives (optWS, optFI, optHS) land.
//!
//! ```text
//! cargo run --release --example fairness_frontier -- BLK BFS
//! ```

use gpu_ebm::ebm::search::best_combo_by_sd;
use gpu_ebm::ebm::sweep::ComboSweep;
use gpu_ebm::ebm::{EbObjective, Evaluator, EvaluatorConfig};
use gpu_ebm::sim::metrics::{fi_of, ws_of};
use gpu_ebm::workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (a, b) = match args.as_slice() {
        [] => ("BLK".to_owned(), "BFS".to_owned()),
        [a, b] => (a.clone(), b.clone()),
        _ => {
            eprintln!("usage: fairness_frontier <APP1> <APP2>");
            return;
        }
    };
    let workload = Workload::pair(&a, &b);
    let ev = Evaluator::new(EvaluatorConfig::paper());
    let alone = ev.alone_ipcs(&workload);
    let sweep: ComboSweep = ev.sweep(&workload).clone();

    // Score every combination.
    let mut points: Vec<(String, f64, f64)> = sweep
        .iter()
        .map(|(combo, _)| {
            let sds: Vec<f64> = sweep
                .ipcs(combo)
                .iter()
                .zip(&alone)
                .map(|(i, al)| i / al)
                .collect();
            (combo.to_string(), ws_of(&sds), fi_of(&sds))
        })
        .collect();

    // Pareto filter: keep combos not dominated in (WS, FI).
    let frontier: Vec<String> = points
        .iter()
        .filter(|p| {
            !points
                .iter()
                .any(|q| q.1 >= p.1 && q.2 >= p.2 && (q.1 > p.1 || q.2 > p.2))
        })
        .map(|p| p.0.clone())
        .collect();

    let (opt_ws, _) = best_combo_by_sd(&sweep, EbObjective::Ws, &alone);
    let (opt_fi, _) = best_combo_by_sd(&sweep, EbObjective::Fi, &alone);
    let (opt_hs, _) = best_combo_by_sd(&sweep, EbObjective::Hs, &alone);

    println!("workload {workload}: WS/FI Pareto frontier over the 64 combinations\n");
    println!("{:>10} {:>8} {:>8}  notes", "combo", "WS", "FI");
    points.sort_by(|x, y| y.1.total_cmp(&x.1));
    for (combo, ws, fi) in &points {
        let on_frontier = frontier.contains(combo);
        if !on_frontier {
            continue;
        }
        let mut notes = Vec::new();
        if *combo == opt_ws.to_string() {
            notes.push("optWS");
        }
        if *combo == opt_fi.to_string() {
            notes.push("optFI");
        }
        if *combo == opt_hs.to_string() {
            notes.push("optHS");
        }
        println!("{combo:>10} {ws:>8.3} {fi:>8.3}  {}", notes.join(" "));
    }
    println!(
        "\n{} of {} combinations are Pareto-optimal; the paper's PBS-WS/FI/HS\n\
         objectives pick different ends of this frontier.",
        frontier.len(),
        points.len()
    );
}
