//! Alone-run TLP sweep for any of the 26 application models — the Fig. 2
//! experiment for an arbitrary app.
//!
//! ```text
//! cargo run --release --example tlp_sweep -- BFS
//! cargo run --release --example tlp_sweep -- BLK GUPS HS
//! ```

use gpu_ebm::sim::{profile_alone, RunSpec};
use gpu_ebm::types::GpuConfig;
use gpu_ebm::workloads::{all_apps, by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["BFS"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let cfg = GpuConfig::paper();
    let cores = cfg.n_cores / 2; // the partition an app owns in a 2-app mix

    for name in names {
        let Some(app) = by_name(name) else {
            eprintln!(
                "unknown application {name}; known: {}",
                all_apps()
                    .iter()
                    .map(|a| a.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            continue;
        };
        let p = profile_alone(&cfg, app, cores, 42, RunSpec::new(3_000, 10_000));
        println!(
            "== {} ({}) — bestTLP = {}",
            app.name,
            app.full_name,
            p.best_tlp()
        );
        println!(
            "{:>5} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7}",
            "TLP", "IPC", "BW", "CMR", "EB", "L1MR", "L2MR"
        );
        for s in &p.samples {
            println!(
                "{:>5} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>7.2} {:>7.2}",
                s.tlp.get(),
                s.ipc,
                s.bw,
                s.cmr,
                s.eb,
                s.l1_miss_rate,
                s.l2_miss_rate
            );
        }
        println!();
    }
}
