//! Watch PBS search in real time: run PBS-WS (or -FI/-HS) on a workload and
//! print every TLP decision — the Fig. 11 experiment, interactively.
//!
//! ```text
//! cargo run --release --example pbs_trace -- BLK BFS
//! cargo run --release --example pbs_trace -- BFS FFT FI
//! ```

use gpu_ebm::ebm::policy::pbs::PbsScaling;
use gpu_ebm::ebm::{EbObjective, Pbs};
use gpu_ebm::sim::machine::Gpu;
use gpu_ebm::sim::{run_controlled, Controller};
use gpu_ebm::types::{GpuConfig, TlpCombo};
use gpu_ebm::workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (a, b) = match args.as_slice() {
        [] => ("BLK".to_owned(), "BFS".to_owned()),
        [a, b, ..] => (a.clone(), b.clone()),
        _ => {
            eprintln!("usage: pbs_trace <APP1> <APP2> [WS|FI|HS]");
            return;
        }
    };
    let objective = match args.get(2).map(String::as_str) {
        Some("FI") => EbObjective::Fi,
        Some("HS") => EbObjective::Hs,
        _ => EbObjective::Ws,
    };

    let cfg = GpuConfig::paper();
    let workload = Workload::pair(&a, &b);
    let mut gpu = Gpu::new(&cfg, workload.apps(), 42);
    gpu.set_combo(&TlpCombo::uniform(cfg.max_tlp(), 2));

    let scaling = if objective.wants_scaling() {
        PbsScaling::Sampled
    } else {
        PbsScaling::None
    };
    let mut pbs = Pbs::new(objective, cfg.max_tlp(), scaling).with_hold_windows(220);
    println!("running {workload} under {} for 600k cycles…\n", pbs.name());
    let run = run_controlled(&mut gpu, &mut pbs as &mut dyn Controller, 600_000, 3_000);

    println!("{:>10}  TLP-{a:<6} TLP-{b:<6}", "cycle");
    for (cycle, levels) in &run.tlp_trace {
        println!(
            "{cycle:>10}  {:<10} {:<10}",
            levels[0].get(),
            levels[1].get()
        );
    }
    println!(
        "\n{} TLP changes over {} sampling windows; the search probed {} combinations\n\
         (the exhaustive space is 64). Final overall IPCs: {:.3} and {:.3}.",
        run.tlp_trace.len(),
        run.n_windows,
        pbs.samples_last_search(),
        run.overall[0].ipc(),
        run.overall[1].ipc()
    );
}
