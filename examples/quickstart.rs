//! Quickstart: co-schedule two applications, measure the system metrics and
//! show what effective-bandwidth management buys.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_ebm::ebm::{EbObjective, Evaluator, EvaluatorConfig, Scheme};
use gpu_ebm::workloads::Workload;

fn main() {
    // The paper machine: 16 cores (8 per application), six memory
    // partitions, GDDR5 channels. `EvaluatorConfig::quick()` is a
    // scaled-down alternative for experimentation.
    let ev = Evaluator::new(EvaluatorConfig::paper());
    let workload = Workload::pair("BLK", "BFS");
    println!("workload: {workload} (a streaming bandwidth hog + a cache-sensitive app)\n");

    let schemes = [
        Scheme::BestTlp,
        Scheme::MaxTlp,
        Scheme::Pbs(EbObjective::Ws),
        Scheme::Opt(EbObjective::Ws),
    ];
    println!(
        "{:<12} {:>7} {:>7} {:>7}  {:<10} per-app slowdowns",
        "scheme", "WS", "FI", "HS", "TLP combo"
    );
    for scheme in schemes {
        let r = ev.evaluate(&workload, scheme);
        let combo = r
            .combo
            .map(|c| c.to_string())
            .unwrap_or_else(|| "dynamic".to_owned());
        let sds: Vec<String> = r.metrics.sds.iter().map(|s| format!("{s:.2}")).collect();
        println!(
            "{:<12} {:>7.3} {:>7.3} {:>7.3}  {:<10} [{}]",
            scheme.to_string(),
            r.metrics.ws,
            r.metrics.fi,
            r.metrics.hs,
            combo,
            sds.join(", ")
        );
    }

    println!(
        "\nbestTLP lets each app use its alone-optimal TLP and the streaming app\n\
         starves the cache-sensitive one; the oracle (and PBS, online) throttles\n\
         the right application and recovers both throughput and fairness."
    );
}
