//! Run every TLP-management scheme on one workload and compare — one row of
//! Figs. 9 and 10, on demand.
//!
//! ```text
//! cargo run --release --example scheme_shootout -- BFS FFT
//! ```

use gpu_ebm::ebm::{EbObjective, Evaluator, EvaluatorConfig, Scheme};
use gpu_ebm::workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (a, b) = match args.as_slice() {
        [] => ("BFS".to_owned(), "FFT".to_owned()),
        [a, b] => (a.clone(), b.clone()),
        _ => {
            eprintln!("usage: scheme_shootout <APP1> <APP2>");
            return;
        }
    };
    let workload = Workload::pair(&a, &b);
    let ev = Evaluator::new(EvaluatorConfig::paper());

    let schemes = [
        Scheme::BestTlp,
        Scheme::MaxTlp,
        Scheme::DynCta,
        Scheme::ModBypass,
        Scheme::Pbs(EbObjective::Ws),
        Scheme::PbsOffline(EbObjective::Ws),
        Scheme::BruteForce(EbObjective::Ws),
        Scheme::Opt(EbObjective::Ws),
        Scheme::Pbs(EbObjective::Fi),
        Scheme::BruteForce(EbObjective::Fi),
        Scheme::Opt(EbObjective::Fi),
        Scheme::Pbs(EbObjective::Hs),
        Scheme::Opt(EbObjective::Hs),
    ];

    println!("workload {workload}:\n");
    let base = ev.evaluate(&workload, Scheme::BestTlp).metrics;
    println!(
        "{:<20} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "scheme", "WS", "FI", "HS", "WS/base", "FI/base"
    );
    for s in schemes {
        let m = ev.evaluate(&workload, s).metrics;
        println!(
            "{:<20} {:>7.3} {:>7.3} {:>7.3} {:>8.1}% {:>8.1}%",
            s.to_string(),
            m.ws,
            m.fi,
            m.hs,
            100.0 * (m.ws / base.ws - 1.0),
            100.0 * (m.fi / base.fi - 1.0),
        );
    }
}
