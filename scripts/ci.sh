#!/usr/bin/env bash
# Offline CI gate: format check, release build, full test suite, and the
# perf_smoke determinism/throughput smoke. No network access required.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release (workspace) =="
cargo build --workspace --release

echo "== cargo test (workspace) =="
cargo test --workspace --release -q

echo "== engine equivalence (optimized vs reference engine, release) =="
cargo test -p gpu-sim --test engine_equivalence --release -q

echo "== cargo test --doc (workspace doctests) =="
cargo test --workspace --release -q --doc

echo "== cargo doc (rustdoc warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== perf_smoke (smoke mode: verifies parallel == serial, cache warm == cold, obs overhead) =="
# Smoke-mode numbers must not clobber the committed full-machine
# BENCH_*.json files.
OBS_JSON="$(mktemp)"
ENG_JSON="$(mktemp)"
PAR_JSON="$(mktemp)"
CAMP_JSON="$(mktemp)"
HIST="$(mktemp)"
trap 'rm -f "$OBS_JSON" "$ENG_JSON" "$PAR_JSON" "$CAMP_JSON" "$HIST"' EXIT
cargo run -p ebm-bench --release --bin perf_smoke -- --smoke \
  --obs-out "$OBS_JSON" --engine-out "$ENG_JSON" --out "$PAR_JSON" \
  --campaign-out "$CAMP_JSON" --history "$HIST"
grep overhead_pct "$OBS_JSON"

echo "== obs overhead gate (disabled metrics/counters within max(1%, measured noise floor)) =="
awk -F': ' '
  /"metrics_off_overhead_pct"/ { moff = $2 + 0 }
  /"counters_off_overhead_pct"/ { coff = $2 + 0 }
  /"noise_floor_pct"/ { nf = $2 + 0 }
  END {
    lim = (nf > 1.0 ? nf : 1.0)
    if (moff > lim) { print "FAIL: metrics_off overhead " moff "% > max(1%, noise floor " nf "%)"; exit 1 }
    if (coff > lim) { print "FAIL: counters_off overhead " coff "% > max(1%, noise floor " nf "%)"; exit 1 }
    print "obs gate OK: metrics_off " moff "%, counters_off " coff "%, noise floor " nf "% (limit " lim "%)"
  }' "$OBS_JSON"

echo "== bench history gate (every perf_smoke section appended; bench-trend flags injected regressions) =="
HIST_LINES="$(wc -l < "$HIST")"
if [ "$HIST_LINES" -lt 2 ]; then
  echo "FAIL: bench history has $HIST_LINES snapshot line(s), expected one per section" >&2
  exit 1
fi
# Two identical rounds must pass trend analysis cleanly...
HIST2="$(mktemp)"
HIST_BAD="$(mktemp)"
trap 'rm -f "$OBS_JSON" "$ENG_JSON" "$PAR_JSON" "$CAMP_JSON" "$HIST" "$HIST2" "$HIST_BAD"' EXIT
cat "$HIST" "$HIST" > "$HIST2"
cargo run -p ebm-bench --release --bin trace-tools -- bench-trend "$HIST2"
# ...and an injected throughput collapse must fail it (self-test of the gate).
cp "$HIST2" "$HIST_BAD"
grep '"benchmark":"engine"' "$HIST" | head -n 1 \
  | sed 's/"memory_bound_speedup":[0-9.eE+-]*/"memory_bound_speedup":0.01/' >> "$HIST_BAD"
if cargo run -p ebm-bench --release --bin trace-tools -- bench-trend "$HIST_BAD" > /dev/null; then
  echo "FAIL: bench-trend did not flag the injected memory_bound_speedup regression" >&2
  exit 1
fi
echo "bench history gate OK: $HIST_LINES sections appended, trend comparison and regression self-test pass"

echo "== engine speedup gate (memory-bound co-run must beat the reference engine >= 3x) =="
grep memory_bound_speedup "$ENG_JSON"
awk -F': ' '/"memory_bound_speedup"/ {
  if ($2 + 0 < 3.0) { print "FAIL: memory_bound_speedup " $2 " < 3.0"; exit 1 }
}' "$ENG_JSON"

echo "== intra-sim scaling gate (lookahead windows must amortize barriers; divergence is always fatal) =="
# The intra_sim block is the last "speedup_vs_1_thread" in BENCH_parallel.
# Gates, in order:
#   * divergence across sim-thread counts is always fatal;
#   * the memory-bound smoke co-run must average more than one simulated
#     cycle per lookahead window (the windowed engine's whole point);
#   * sync points per kcycle must sit well under the retired per-cycle
#     3-phase design's ~3000 barrier crossings per stepped kcycle;
#   * on a multi-core host the best multi-worker run must beat serial;
#     on a 1-core host (`contended: true`) there is nothing to overlap,
#     so the gate instead bounds the time-slicing overhead: >= 0.5x.
awk -F': ' '
  /"host_parallelism"/ { host = $2 + 0 }
  /"identical_across_sim_threads"/ { if ($2 !~ /true/) bad = 1 }
  /"sync_points_per_kcycle"/ { sync = $2 + 0 }
  /"mean_window_cycles"/ { win = $2 + 0 }
  /"contended"/ { contended = ($2 ~ /true/) }
  /"speedup_vs_1_thread"/ { intra = $2 + 0 }
  END {
    if (bad) { print "FAIL: intra-sim parallel run diverged from serial"; exit 1 }
    if (win <= 1.0) {
      print "FAIL: mean_window_cycles " win " <= 1.0 on the memory-bound co-run"; exit 1
    }
    if (sync <= 0 || sync >= 3000) {
      print "FAIL: sync_points_per_kcycle " sync " not improved vs the ~3000/kcycle per-cycle-barrier baseline"; exit 1
    }
    if (!contended && host > 1 && intra < 1.0) {
      print "FAIL: intra-sim speedup " intra " < 1.0 on a " host "-core host"; exit 1
    }
    if (contended && intra < 0.5) {
      print "FAIL: intra-sim overhead on the contended 1-core host exceeds 2x (speedup " intra ")"; exit 1
    }
    print "intra-sim gate OK: speedup " intra "x, " sync " sync points/kcycle, mean window " win " cycles (host parallelism " host ", contended " (contended ? "true" : "false") ")"
  }
' "$PAR_JSON"

echo "== campaign scheduler bench gate (dedup > 0; scheduled not slower than serial on multi-core hosts) =="
grep -E 'dedup_ratio|speedup_cold|scheduled_identical' "$CAMP_JSON"
awk -F': ' '
  /"host_parallelism"/ { host = $2 + 0 }
  /"contended"/ { contended = ($2 ~ /true/) }
  /"dedup_ratio"/ { dedup = $2 + 0 }
  /"speedup_cold"/ { sp = $2 + 0 }
  /"scheduled_identical_to_serial"/ { ident = ($2 ~ /true/) }
  END {
    if (!ident) { print "FAIL: scheduled campaign renders diverged from serial"; exit 1 }
    if (dedup <= 0) { print "FAIL: campaign dedup_ratio " dedup " is not > 0"; exit 1 }
    if (!contended && host > 1 && sp < 1.0) {
      print "FAIL: scheduled campaign slower than serial (speedup_cold " sp ") on a " host "-core host"; exit 1
    }
    print "campaign bench gate OK: dedup " dedup ", cold speedup " sp "x (host parallelism " host ", contended " (contended ? "true" : "false") ")"
  }
' "$CAMP_JSON"

echo "== docs gates (PARALLELISM/BENCH_SCHEMA/TRACE_SCHEMA exist and pin their versions) =="
grep -q 'EBM_SIM_THREADS' docs/PARALLELISM.md
grep -q 'EBM_THREADS' docs/PARALLELISM.md
BENCH_VER="$(sed -n 's/^pub const BENCH_SCHEMA_VERSION: u32 = \([0-9]*\);$/\1/p' crates/bench/src/lib.rs)"
grep -q "BENCH schema (v$BENCH_VER)" docs/BENCH_SCHEMA.md
TRACE_VER="$(sed -n 's/^pub const TRACE_SCHEMA_VERSION: u32 = \([0-9]*\);$/\1/p' crates/sim/src/trace.rs)"
grep -q "Trace schema (v$TRACE_VER)" docs/TRACE_SCHEMA.md
echo "docs gates OK: BENCH schema v$BENCH_VER, trace schema v$TRACE_VER"

echo "== result cache round trip (experiments --quick twice, one cache dir) =="
CACHE_DIR="$(mktemp -d)"
COLD_OUT="$(mktemp -d)"
WARM_OUT="$(mktemp -d)"
TRACE_FILE="$(mktemp -u).jsonl"
SER_OUT="$(mktemp -d)"
PARSIM_OUT="$(mktemp -d)"
SCHED_REF="$(mktemp -d)"
SCHED_OUT="$(mktemp -d)"
SER_TRACE="$(mktemp -u).jsonl"
SCHED_TRACE="$(mktemp -u).jsonl"
REPORT_REF="$(mktemp)"
REPORT_HTML="$(mktemp)"
trap 'rm -rf "$CACHE_DIR" "$COLD_OUT" "$WARM_OUT" "$TRACE_FILE" "$OBS_JSON" "$ENG_JSON" "$PAR_JSON" "$CAMP_JSON" "$HIST" "$HIST2" "$HIST_BAD" "$SER_OUT" "$PARSIM_OUT" "$SCHED_REF" "$SCHED_OUT" "$SER_TRACE" "$SCHED_TRACE" "$REPORT_REF" "$REPORT_HTML"' EXIT
EBM_CACHE_DIR="$CACHE_DIR" cargo run -p ebm-bench --release --bin experiments -- \
  --quick --trace "$TRACE_FILE" --out "$COLD_OUT" 2> "$COLD_OUT/stderr.log"
EBM_CACHE_DIR="$CACHE_DIR" cargo run -p ebm-bench --release --bin experiments -- \
  --quick --out "$WARM_OUT" 2> "$WARM_OUT/stderr.log"
grep '\] cache: ' "$WARM_OUT/stderr.log"
# The warm run must be served by the cache...
if grep -q '\] cache: .*hit rate 0\.000' "$WARM_OUT/stderr.log"; then
  echo "FAIL: warm experiments run reported a zero cache hit rate" >&2
  exit 1
fi
# ...and must reproduce the cold run's reports byte for byte. PROFILE.json
# records wall-clock timings, which legitimately differ between runs.
rm -f "$COLD_OUT/stderr.log" "$WARM_OUT/stderr.log"
diff -r --exclude=PROFILE.json "$COLD_OUT" "$WARM_OUT"
echo "cache round trip OK: warm run hit the cache and reproduced every report"

echo "== trace schema gate (trace-tools validate on the --quick campaign trace) =="
cargo run -p ebm-bench --release --bin trace-tools -- validate "$TRACE_FILE"

echo "== intra-sim determinism gate (experiments --quick at 1 vs 4 sim threads, byte-compared) =="
# No EBM_CACHE_DIR: each process starts with an empty in-process registry,
# so both runs genuinely simulate. The two artifact trees must be
# byte-identical regardless of the domain-worker count (PROFILE.json holds
# wall-clock timings and legitimately differs). Scoped to the trace-enabled
# fig11 artifact: on a 1-core host EBM_THREADS resolves to 1, sweeps run
# inline rather than in fan-out workers, and the whole campaign would pay
# 4-worker barrier overhead per simulation — fig11 keeps the gate an
# end-to-end release-mode byte-compare at tolerable cost.
EBM_SIM_THREADS=1 cargo run -p ebm-bench --release --bin experiments -- \
  --quick --only fig11 --out "$SER_OUT" 2> "$SER_OUT/stderr.log"
EBM_SIM_THREADS=4 cargo run -p ebm-bench --release --bin experiments -- \
  --quick --only fig11 --out "$PARSIM_OUT" 2> "$PARSIM_OUT/stderr.log"
rm -f "$SER_OUT/stderr.log" "$PARSIM_OUT/stderr.log"
diff -r --exclude=PROFILE.json "$SER_OUT" "$PARSIM_OUT"
echo "intra-sim determinism OK: 1-thread and 4-thread artifacts are byte-identical"

echo "== campaign scheduler gate (experiments --quick serial vs scheduled, byte-compared at 1/2/4 workers) =="
# No EBM_CACHE_DIR: each process starts cold, so the scheduled runs
# genuinely execute the work graph. The serial loop is the reference the
# scheduler is held to, byte for byte, at every pool width (PROFILE.json
# holds wall-clock timings and legitimately differs).
cargo run -p ebm-bench --release --bin experiments -- \
  --quick --serial --trace "$SER_TRACE" --out "$SCHED_REF" 2> "$SCHED_REF/stderr.log"
rm -f "$SCHED_REF/stderr.log"
# The default report sections are deterministic: the serial run's report
# is the byte-exact reference every scheduled run below is held to.
cargo run -p ebm-bench --release --bin trace-tools -- report "$SER_TRACE" > "$REPORT_REF"
for T in 1 2 4; do
  rm -rf "$SCHED_OUT"; mkdir -p "$SCHED_OUT"
  rm -f "$SCHED_TRACE"
  EBM_THREADS=$T EBM_LOG=info cargo run -p ebm-bench --release --bin experiments -- \
    --quick --trace "$SCHED_TRACE" --out "$SCHED_OUT" 2> "$SCHED_OUT/stderr.log"
  grep '\] sched: ' "$SCHED_OUT/stderr.log"
  DEDUP="$(sed -n 's/.*\] sched:.*[( ]\([0-9][0-9]*\)% deduped.*/\1/p' "$SCHED_OUT/stderr.log")"
  if [ -z "$DEDUP" ] || [ "$DEDUP" -le 0 ]; then
    echo "FAIL: scheduled campaign at $T worker(s) reported no deduplication" >&2
    exit 1
  fi
  rm -f "$SCHED_OUT/stderr.log"
  diff -r --exclude=PROFILE.json "$SCHED_REF" "$SCHED_OUT"
  cargo run -p ebm-bench --release --bin trace-tools -- report "$SCHED_TRACE" \
    | diff "$REPORT_REF" -
  echo "campaign scheduler OK at $T worker(s): ${DEDUP}% deduped, artifacts and run report byte-identical to serial"
done

echo "== run report smoke (--timings/--profile/--html variants render and the page is self-contained) =="
cargo run -p ebm-bench --release --bin trace-tools -- report "$SCHED_TRACE" \
  --timings --profile "$SCHED_OUT/PROFILE.json" --html "$REPORT_HTML" > /dev/null
grep -q '<html>' "$REPORT_HTML"
if grep -qE 'src=|href=' "$REPORT_HTML"; then
  echo "FAIL: HTML report references external resources" >&2
  exit 1
fi
echo "run report smoke OK"

echo "CI OK"
