#!/usr/bin/env bash
# Offline CI gate: format check, release build, full test suite, and the
# perf_smoke determinism/throughput smoke. No network access required.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release (workspace) =="
cargo build --workspace --release

echo "== cargo test (workspace) =="
cargo test --workspace --release -q

echo "== engine equivalence (optimized vs reference engine, release) =="
cargo test -p gpu-sim --test engine_equivalence --release -q

echo "== cargo test --doc (workspace doctests) =="
cargo test --workspace --release -q --doc

echo "== cargo doc (rustdoc warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== perf_smoke (smoke mode: verifies parallel == serial) =="
cargo run -p ebm-bench --release --bin perf_smoke -- --smoke

echo "CI OK"
