#!/usr/bin/env bash
# Offline CI gate: format check, release build, full test suite, and the
# perf_smoke determinism/throughput smoke. No network access required.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release (workspace) =="
cargo build --workspace --release

echo "== cargo test (workspace) =="
cargo test --workspace --release -q

echo "== engine equivalence (optimized vs reference engine, release) =="
cargo test -p gpu-sim --test engine_equivalence --release -q

echo "== cargo test --doc (workspace doctests) =="
cargo test --workspace --release -q --doc

echo "== cargo doc (rustdoc warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== perf_smoke (smoke mode: verifies parallel == serial, cache warm == cold, obs overhead) =="
# Smoke-mode numbers must not clobber the committed full-machine
# BENCH_obs.json / BENCH_engine.json.
OBS_JSON="$(mktemp)"
ENG_JSON="$(mktemp)"
trap 'rm -f "$OBS_JSON" "$ENG_JSON"' EXIT
cargo run -p ebm-bench --release --bin perf_smoke -- --smoke --obs-out "$OBS_JSON" --engine-out "$ENG_JSON"
grep overhead_pct "$OBS_JSON"

echo "== engine speedup gate (memory-bound co-run must beat the reference engine >= 3x) =="
grep memory_bound_speedup "$ENG_JSON"
awk -F': ' '/"memory_bound_speedup"/ {
  if ($2 + 0 < 3.0) { print "FAIL: memory_bound_speedup " $2 " < 3.0"; exit 1 }
}' "$ENG_JSON"

echo "== result cache round trip (experiments --quick twice, one cache dir) =="
CACHE_DIR="$(mktemp -d)"
COLD_OUT="$(mktemp -d)"
WARM_OUT="$(mktemp -d)"
TRACE_FILE="$(mktemp -u).jsonl"
trap 'rm -rf "$CACHE_DIR" "$COLD_OUT" "$WARM_OUT" "$TRACE_FILE" "$OBS_JSON" "$ENG_JSON"' EXIT
EBM_CACHE_DIR="$CACHE_DIR" cargo run -p ebm-bench --release --bin experiments -- \
  --quick --trace "$TRACE_FILE" --out "$COLD_OUT" 2> "$COLD_OUT/stderr.log"
EBM_CACHE_DIR="$CACHE_DIR" cargo run -p ebm-bench --release --bin experiments -- \
  --quick --out "$WARM_OUT" 2> "$WARM_OUT/stderr.log"
grep '^cache:' "$WARM_OUT/stderr.log"
# The warm run must be served by the cache...
if grep -q '^cache: .*hit rate 0\.000' "$WARM_OUT/stderr.log"; then
  echo "FAIL: warm experiments run reported a zero cache hit rate" >&2
  exit 1
fi
# ...and must reproduce the cold run's reports byte for byte. PROFILE.json
# records wall-clock timings, which legitimately differ between runs.
rm -f "$COLD_OUT/stderr.log" "$WARM_OUT/stderr.log"
diff -r --exclude=PROFILE.json "$COLD_OUT" "$WARM_OUT"
echo "cache round trip OK: warm run hit the cache and reproduced every report"

echo "== trace schema gate (trace-tools validate on the --quick campaign trace) =="
cargo run -p ebm-bench --release --bin trace-tools -- validate "$TRACE_FILE"

echo "CI OK"
