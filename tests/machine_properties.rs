//! Property-based integration tests: arbitrary workload pairs, seeds and
//! TLP combinations must never break the machine's conservation and
//! monotonicity invariants.
//!
//! Cases are generated with the in-repo [`SplitMix64`] generator (fixed
//! seeds, so failures reproduce exactly) — the build must work fully
//! offline.

use gpu_ebm::sim::machine::Gpu;
use gpu_ebm::types::{AppId, GpuConfig, MemCounters, SplitMix64, TlpCombo, TlpLevel};
use gpu_ebm::workloads::all_apps;

fn counters_sane(c: &MemCounters) {
    assert!(c.l1_misses <= c.l1_accesses, "L1 misses exceed accesses");
    assert!(c.l2_misses <= c.l2_accesses, "L2 misses exceed accesses");
    // Every DRAM byte moved belongs to some row decision.
    assert_eq!(
        c.dram_bytes % gpu_ebm::types::LINE_SIZE,
        0,
        "DRAM bytes must be line-granular"
    );
}

/// Any pair of application models at any ladder combination runs,
/// makes progress, and keeps its counters consistent.
#[test]
fn any_pair_any_combo_is_well_behaved() {
    let ladder = [1u32, 2, 4, 6, 8];
    let mut rng = SplitMix64::new(0x6A9_0001);
    for _ in 0..12 {
        let ai = rng.next_below(26) as usize;
        let bi = rng.next_below(26) as usize;
        let l0 = rng.next_below(5) as usize;
        let l1 = rng.next_below(5) as usize;
        let seed = 1 + rng.next_below(999);
        let cfg = GpuConfig::small();
        let apps = [&all_apps()[ai], &all_apps()[bi]];
        let mut gpu = Gpu::new(&cfg, &apps, seed);
        gpu.set_combo(&TlpCombo::pair(
            TlpLevel::new(ladder[l0]).unwrap(),
            TlpLevel::new(ladder[l1]).unwrap(),
        ));
        gpu.run(2_500);
        for a in 0..2u8 {
            let c = gpu.counters(AppId::new(a));
            counters_sane(&c);
            assert!(c.warp_insts > 0, "App-{} stalled completely", a + 1);
        }
    }
}

/// Counters are monotone over time (cumulative snapshots never regress).
#[test]
fn counters_are_monotone() {
    let mut rng = SplitMix64::new(0x6A9_0002);
    for _ in 0..12 {
        let seed = 1 + rng.next_below(499);
        let cfg = GpuConfig::small();
        let apps = [&all_apps()[14], &all_apps()[22]]; // BLK, BFS
        let mut gpu = Gpu::new(&cfg, &apps, seed);
        let mut prev = gpu.counters(AppId::new(0));
        for _ in 0..5 {
            gpu.run(500);
            let cur = gpu.counters(AppId::new(0));
            assert!(cur.warp_insts >= prev.warp_insts);
            assert!(cur.l1_accesses >= prev.l1_accesses);
            assert!(cur.dram_bytes >= prev.dram_bytes);
            prev = cur;
        }
    }
}

/// Attained bandwidth never exceeds the theoretical peak.
#[test]
fn attained_bandwidth_is_bounded_by_peak() {
    let ladder = [1u32, 2, 4, 6, 8];
    let mut rng = SplitMix64::new(0x6A9_0003);
    for _ in 0..12 {
        let seed = 1 + rng.next_below(199);
        let l = rng.next_below(5) as usize;
        let cfg = GpuConfig::small();
        let apps = [&all_apps()[14], &all_apps()[15]]; // BLK, TRD: bandwidth hogs
        let mut gpu = Gpu::new(&cfg, &apps, seed);
        gpu.set_combo(&TlpCombo::uniform(TlpLevel::new(ladder[l]).unwrap(), 2));
        gpu.run(1_000);
        let before: u64 = (0..2).map(|a| gpu.counters(AppId::new(a)).dram_bytes).sum();
        gpu.run(4_000);
        let after: u64 = (0..2).map(|a| gpu.counters(AppId::new(a)).dram_bytes).sum();
        let bw = (after - before) as f64 / 4_000.0;
        assert!(
            bw <= cfg.peak_bw_bytes_per_cycle() * 1.001,
            "attained {bw:.1} B/c exceeds peak {:.1}",
            cfg.peak_bw_bytes_per_cycle()
        );
    }
}
