//! Integration tests for the paper's core empirical claims, verified on the
//! scaled-down machine:
//!
//! * §III-B: EB closely tracks IPC across TLP levels (Fig. 2d);
//! * §IV Observation 1: the combination with the highest EB-WS is (near)
//!   the combination with the highest WS;
//! * §IV: EB alone-ratios are smaller than IPC alone-ratios (Fig. 5);
//! * §IV: scaling EB by alone-EB estimates aligns EB-FI with SD-FI.

use gpu_ebm::ebm::search::{best_combo_by_eb, best_combo_by_sd};
use gpu_ebm::ebm::sweep::ComboSweep;
use gpu_ebm::ebm::{alone_ratio, EbObjective, ScalingFactors};
use gpu_ebm::sim::harness::RunSpec;
use gpu_ebm::sim::metrics::{fi_of, ws_of};
use gpu_ebm::sim::profile_alone;
use gpu_ebm::types::GpuConfig;
use gpu_ebm::workloads::{by_name, Workload};

fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let (vx, vy): (f64, f64) = (
        xs.iter().map(|x| (x - mx).powi(2)).sum(),
        ys.iter().map(|y| (y - my).powi(2)).sum(),
    );
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

#[test]
fn eb_tracks_ipc_across_tlp_levels() {
    // Fig. 2(d): "effective bandwidth observed by the core and performance
    // closely follow each other". Verified for a cache-sensitive, a
    // streaming and a tiled application.
    let cfg = GpuConfig::small();
    for name in ["BFS", "BLK", "HS"] {
        let p = profile_alone(&cfg, by_name(name).unwrap(), 2, 7, RunSpec::new(500, 3_000));
        let ipcs: Vec<f64> = p.samples.iter().map(|s| s.ipc).collect();
        let ebs: Vec<f64> = p.samples.iter().map(|s| s.eb).collect();
        let r = correlation(&ipcs, &ebs);
        assert!(r > 0.6, "{name}: EB-IPC correlation only {r:.2}");
    }
}

#[test]
fn observation_1_eb_ws_argmax_is_near_ws_argmax() {
    // §IV Observation 1 on the small machine: the combination with the
    // highest EB sum achieves close to the best WS.
    let cfg = GpuConfig::small();
    for (a, b) in [("BLK", "BFS"), ("BFS", "FFT")] {
        let w = Workload::pair(a, b);
        let sweep = ComboSweep::measure(&cfg, &w, 42, RunSpec::new(500, 3_000));
        let alone: Vec<f64> = w
            .apps()
            .iter()
            .map(|app| profile_alone(&cfg, app, 2, 42, RunSpec::new(500, 3_000)).ipc_at_best())
            .collect();
        let scaling = ScalingFactors::none(2);
        let (eb_combo, _) = best_combo_by_eb(&sweep, EbObjective::Ws, &scaling);
        let (_, best_ws) = best_combo_by_sd(&sweep, EbObjective::Ws, &alone);
        let ws_at_eb_combo = ws_of(
            &sweep
                .ipcs(&eb_combo)
                .iter()
                .zip(&alone)
                .map(|(i, x)| i / x)
                .collect::<Vec<_>>(),
        );
        assert!(
            ws_at_eb_combo >= 0.85 * best_ws,
            "{w}: EB-WS argmax reaches only {:.0}% of optimal WS",
            100.0 * ws_at_eb_combo / best_ws
        );
    }
}

#[test]
fn eb_alone_ratios_are_smaller_than_ipc_alone_ratios_on_average() {
    // Fig. 5's argument for preferring EB over IPC as the runtime proxy.
    let cfg = GpuConfig::small();
    let names = ["BLK", "BFS", "FFT", "TRD", "GUPS", "HS", "LUD", "SCP"];
    let profiles: Vec<(f64, f64)> = names
        .iter()
        .map(|n| {
            let p = profile_alone(&cfg, by_name(n).unwrap(), 2, 11, RunSpec::new(500, 3_000));
            (p.ipc_at_best(), p.eb_at_best())
        })
        .collect();
    let mut ipc_log_sum = 0.0;
    let mut eb_log_sum = 0.0;
    let mut count = 0;
    for i in 0..profiles.len() {
        for j in i + 1..profiles.len() {
            ipc_log_sum += alone_ratio(profiles[i].0, profiles[j].0).ln();
            eb_log_sum += alone_ratio(profiles[i].1, profiles[j].1).ln();
            count += 1;
        }
    }
    let (ipc_ar, eb_ar) = (
        (ipc_log_sum / count as f64).exp(),
        (eb_log_sum / count as f64).exp(),
    );
    assert!(
        eb_ar < ipc_ar,
        "mean EB_AR {eb_ar:.2} should be below mean IPC_AR {ipc_ar:.2}"
    );
}

#[test]
fn scaling_aligns_eb_fi_with_sd_fi() {
    // §IV: for a lopsided workload, scaled EB-FI must correlate with SD-FI
    // at least as well as raw EB-FI does (over the sweep's combinations).
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let sweep = ComboSweep::measure(&cfg, &w, 42, RunSpec::new(500, 3_000));
    let profiles: Vec<_> = w
        .apps()
        .iter()
        .map(|a| profile_alone(&cfg, a, 2, 42, RunSpec::new(500, 3_000)))
        .collect();
    let alone_ipc: Vec<f64> = profiles.iter().map(|p| p.ipc_at_best()).collect();
    let exact =
        ScalingFactors::from_alone_ebs(profiles.iter().map(|p| p.eb_at_best().max(1e-6)).collect());
    let raw = ScalingFactors::none(2);

    let mut sd_fi = Vec::new();
    let mut eb_fi_raw = Vec::new();
    let mut eb_fi_scaled = Vec::new();
    for (combo, _) in sweep.iter() {
        let sds: Vec<f64> = sweep
            .ipcs(combo)
            .iter()
            .zip(&alone_ipc)
            .map(|(i, a)| i / a)
            .collect();
        sd_fi.push(fi_of(&sds));
        let ebs = sweep.ebs(combo);
        eb_fi_raw.push(fi_of(&raw.apply(&ebs)));
        eb_fi_scaled.push(fi_of(&exact.apply(&ebs)));
    }
    let r_raw = correlation(&sd_fi, &eb_fi_raw);
    let r_scaled = correlation(&sd_fi, &eb_fi_scaled);
    assert!(
        r_scaled > 0.3,
        "scaled EB-FI barely correlates with SD-FI ({r_scaled:.2})"
    );
    assert!(
        r_scaled >= r_raw - 0.05,
        "scaling must not hurt the correlation: raw {r_raw:.2} vs scaled {r_scaled:.2}"
    );
}
