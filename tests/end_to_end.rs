//! End-to-end integration tests across the whole workspace: application
//! models → SIMT cores → crossbar → L2/DRAM → metrics → policies.
//!
//! Everything runs on the scaled-down `GpuConfig::small()` machine so the
//! suite stays fast; the paper-machine behaviour is exercised by the
//! `ebm-bench` binaries.

use gpu_ebm::ebm::{EbObjective, Evaluator, EvaluatorConfig, Scheme};
use gpu_ebm::sim::machine::Gpu;
use gpu_ebm::types::{AppId, GpuConfig, TlpCombo, TlpLevel};
use gpu_ebm::workloads::{all_workloads, Workload};

fn quick() -> Evaluator {
    Evaluator::new(EvaluatorConfig::quick())
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let ev = quick();
        let r = ev.evaluate(&Workload::pair("BLK", "BFS"), Scheme::BestTlp);
        (r.metrics.ws, r.metrics.fi, r.combo)
    };
    assert_eq!(run(), run());
}

#[test]
fn every_workload_runs_on_the_small_machine() {
    // Short smoke run of all 25 workloads end to end.
    let cfg = GpuConfig::small();
    for w in all_workloads() {
        let mut gpu = Gpu::new(&cfg, w.apps(), 9);
        gpu.run(1_500);
        for a in 0..2u8 {
            let c = gpu.counters(AppId::new(a));
            assert!(c.warp_insts > 0, "{w}: App-{} made no progress", a + 1);
        }
    }
}

#[test]
fn all_schemes_produce_valid_metrics() {
    let ev = quick();
    let w = Workload::pair("BLK", "BFS");
    for scheme in [
        Scheme::BestTlp,
        Scheme::MaxTlp,
        Scheme::DynCta,
        Scheme::ModBypass,
        Scheme::Pbs(EbObjective::Ws),
        Scheme::Pbs(EbObjective::Fi),
        Scheme::PbsOffline(EbObjective::Ws),
        Scheme::BruteForce(EbObjective::Ws),
        Scheme::Opt(EbObjective::Ws),
        Scheme::Opt(EbObjective::Fi),
        Scheme::Opt(EbObjective::Hs),
    ] {
        let m = ev.evaluate(&w, scheme).metrics;
        assert!(m.ws.is_finite() && m.ws > 0.0, "{scheme}: WS {}", m.ws);
        assert!((0.0..=1.0 + 1e-9).contains(&m.fi), "{scheme}: FI {}", m.fi);
        assert!(m.hs.is_finite() && m.hs > 0.0, "{scheme}: HS {}", m.hs);
        assert_eq!(m.sds.len(), 2);
    }
}

#[test]
fn oracle_never_falls_far_below_the_baseline() {
    // The oracle picks its combination from a shorter profiling sweep, so a
    // full-length re-run may deviate slightly — but it must stay close.
    let ev = quick();
    for w in [Workload::pair("BLK", "BFS"), Workload::pair("BFS", "FFT")] {
        let base = ev.evaluate(&w, Scheme::BestTlp).metrics.ws;
        let opt = ev.evaluate(&w, Scheme::Opt(EbObjective::Ws)).metrics.ws;
        assert!(
            opt >= 0.9 * base,
            "{w}: optWS {opt:.3} far below ++bestTLP {base:.3}"
        );
    }
}

#[test]
fn tlp_knob_controls_shared_resource_consumption_end_to_end() {
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BLK");
    let bw_at = |tlp: u32| {
        let mut gpu = Gpu::new(&cfg, w.apps(), 3);
        gpu.set_combo(&TlpCombo::pair(
            TlpLevel::new(tlp).unwrap(),
            TlpLevel::new(4).unwrap(),
        ));
        gpu.run(6_000);
        gpu.counters(AppId::new(0)).dram_bytes as f64
            / gpu.counters(AppId::new(1)).dram_bytes.max(1) as f64
    };
    // Raising app 0's TLP raises its share of DRAM bytes relative to the
    // fixed co-runner.
    assert!(bw_at(8) > bw_at(1), "TLP did not shift the bandwidth share");
}

#[test]
fn bypass_flag_travels_through_the_whole_memory_system() {
    let cfg = GpuConfig::small();
    let w = Workload::pair("BLK", "BFS");
    let mut gpu = Gpu::new(&cfg, w.apps(), 5);
    gpu.set_bypass_l1(AppId::new(0), true);
    gpu.run(4_000);
    let c0 = gpu.counters(AppId::new(0));
    let c1 = gpu.counters(AppId::new(1));
    assert_eq!(c0.l1_accesses, 0, "bypassed app must not touch its L1");
    assert!(
        c0.l2_accesses > 0,
        "bypassed loads still reach the L2 (no-allocate)"
    );
    assert!(c1.l1_accesses > 0, "co-runner unaffected");
}

#[test]
fn dynamic_policies_actually_move_the_knobs() {
    let ev = quick();
    let w = Workload::pair("BLK", "BFS");
    let r = ev.evaluate(&w, Scheme::Pbs(EbObjective::Ws));
    assert!(
        r.tlp_trace.len() > 2,
        "PBS never explored: {:?}",
        r.tlp_trace
    );
    let cycles: Vec<u64> = r.tlp_trace.iter().map(|(c, _)| *c).collect();
    assert!(
        cycles.windows(2).all(|w| w[0] < w[1]),
        "trace must be time-ordered"
    );
}

#[test]
fn evaluator_caches_survive_many_schemes() {
    let ev = quick();
    let w = Workload::pair("BLK", "BFS");
    for s in [
        Scheme::BestTlp,
        Scheme::Opt(EbObjective::Ws),
        Scheme::Opt(EbObjective::Fi),
        Scheme::BruteForce(EbObjective::Hs),
        Scheme::PbsOffline(EbObjective::Fi),
    ] {
        let _ = ev.evaluate(&w, s);
    }
    // All of the above share one sweep and two alone profiles; if caching
    // broke, this test would take noticeably long and the evaluator would
    // re-measure (we can only assert behaviourally: results stay coherent).
    let again = ev.evaluate(&w, Scheme::Opt(EbObjective::Ws));
    assert!(again.metrics.ws > 0.0);
}
