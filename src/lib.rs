//! `gpu-ebm` — a reproduction of *"Efficient and Fair Multi-programming in
//! GPUs via Effective Bandwidth Management"* (HPCA 2018) as a Rust
//! workspace.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`types`] — identifiers, machine configuration, the TLP ladder,
//!   statistics counters;
//! * [`mem`] — the memory-system substrate (caches + MSHRs, crossbar,
//!   FR-FCFS controllers, GDDR5 timing);
//! * [`simt`] — the SIMT core model (warps, GTO scheduling, SWL warp
//!   limiting);
//! * [`workloads`] — the 26 synthetic application models of Table IV and
//!   the 25 evaluated two-application workloads;
//! * [`sim`] — the multi-application machine, alone-run profiling and the
//!   controlled-run harness;
//! * [`ebm`] — the paper's contribution: effective-bandwidth metrics,
//!   pattern-based searching (PBS-WS/FI/HS), baselines and the evaluation
//!   driver.
//!
//! # Quickstart
//!
//! ```
//! use gpu_ebm::ebm::{Evaluator, EvaluatorConfig, Scheme};
//! use gpu_ebm::workloads::Workload;
//!
//! // The quick config runs a scaled-down machine suitable for tests.
//! let mut ev = Evaluator::new(EvaluatorConfig::quick());
//! let workload = Workload::pair("BLK", "BFS");
//! let result = ev.evaluate(&workload, Scheme::BestTlp);
//! assert!(result.metrics.ws > 0.0);
//! ```
//!
//! The `examples/` directory holds runnable scenarios; the `ebm-bench`
//! crate regenerates every figure and table of the paper
//! (`cargo run -p ebm-bench --release --bin experiments`).

#![deny(missing_docs)]

/// Common identifiers, configuration and statistics (re-export of
/// [`gpu_types`]).
pub mod types {
    pub use gpu_types::*;
}

/// Memory-system substrate (re-export of [`gpu_mem`]).
pub mod mem {
    pub use gpu_mem::*;
}

/// SIMT core model (re-export of [`gpu_simt`]).
pub mod simt {
    pub use gpu_simt::*;
}

/// Application models and workloads (re-export of [`gpu_workloads`]).
pub mod workloads {
    pub use gpu_workloads::*;
}

/// Multi-application simulator and harness (re-export of [`gpu_sim`]).
pub mod sim {
    pub use gpu_sim::*;
}

/// The paper's contribution: EB metrics and TLP management (re-export of
/// [`ebm_core`]).
pub mod ebm {
    pub use ebm_core::*;
}
